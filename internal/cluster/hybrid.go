// hybrid.go replays traces against a heterogeneous pool (CPU + DSCS
// instances) under a pluggable scheduling policy — the evaluation harness
// for the paper's Section 5.3 scheduling future-work. The pool accounting
// is serve.HybridCore (classic shared queue) or serve.MultiCore (split
// per-pool backlogs, N CPU pools), the same scheduling cores the live
// engine's pools are built on, driven here from the virtual clock.
package cluster

import (
	"fmt"
	"time"

	"dscs/internal/metrics"
	"dscs/internal/scale"
	"dscs/internal/sched"
	"dscs/internal/serve"
	"dscs/internal/sim"
	"dscs/internal/trace"
)

// HybridServiceModel returns the expected service times of a benchmark on
// each instance class plus its acceleratable-function count. When a run
// prices tasks with a separate belief (HybridConfig.Estimate or
// AdaptiveEstimates), the Service model is evaluated again at dispatch to
// obtain the true execution time, so it must be a pure function of the
// slug in those regimes.
type HybridServiceModel func(slug string) (cpu, dscs time.Duration, accelFuncs int)

// HybridConfig parameterizes a hybrid run.
type HybridConfig struct {
	CPUInstances, DSCSInstances int
	QueueDepth                  int
	Policy                      sched.Policy
	Service                     HybridServiceModel
	// Jitter scales service times with a lognormal of this sigma.
	Jitter float64
	// SampleEvery sets the telemetry sampling period.
	SampleEvery time.Duration
	// SplitQueues gives each pool its own backlog (serve.MultiCore), the
	// shape of a deployment where requests target the accelerated tier:
	// arrivals land on the DSCS backlog and the CPU side only sees work
	// through spillover or stealing. The default shared queue (false)
	// reproduces the classic runs bit for bit.
	SplitQueues bool
	// CPUPools splits the CPU instances across this many same-class pools
	// (split layout; default 1). With several pools the rebalancing is
	// N-way: spilled arrivals pick the least-loaded CPU pool and idle CPU
	// pools steal from each other as well as from the DSCS backlog.
	CPUPools int
	// StealThreshold arms pull-based rebalancing over split backlogs: a
	// pool whose own backlog is empty pulls a peer's oldest queued work
	// once the peer backlog exceeds this depth (0 disables; split layout
	// only; ignored under AdaptiveBalance).
	StealThreshold int
	// SpilloverThreshold reroutes an arrival onto a CPU backlog at submit
	// time once the DSCS backlog is this deep (0 disables; split layout
	// only; ignored under AdaptiveBalance).
	SpilloverThreshold int
	// AdaptiveBalance replaces the static queue-depth thresholds with the
	// wait-keyed decision (split layout only): every dispatch records the
	// served task's queue delay into per-pool digests, and work spills or
	// is stolen once the donor pool's adopted wait-p95 has diverged above
	// the target's past the hysteresis latch (metrics.Digest.Adopt) — the
	// same serve.MultiCore logic the live engine runs behind
	// -adaptive-balance, driven here from the virtual clock.
	AdaptiveBalance bool
	// SLO is the per-request latency budget; completions within it count
	// toward HybridStats.WithinSLO (0 disables the tally).
	SLO time.Duration
	// Estimate, when set, is the scheduler's belief about service times:
	// tasks are priced with it while Service still drives actual
	// execution — the regime where an offline profile has drifted from
	// the hardware. Nil prices with Service itself (exact knowledge, the
	// earlier behavior).
	Estimate HybridServiceModel
	// AdaptiveEstimates blends each arrival's pricing toward the observed
	// per-class p50 latency digests (metrics.Observatory), pulling a
	// drifted Estimate back to measurement — the policies' half of the
	// live engine's serve.Options.AdaptiveEstimates, on the virtual clock.
	AdaptiveEstimates bool
	// EstimateWarmup and EstimateWindow tune the digests — estimate and
	// queue-delay alike (defaults metrics.DefaultWarmup /
	// metrics.DefaultWindow).
	EstimateWarmup, EstimateWindow int
	// Elastic arms the worker lifecycle on every pool (split layout
	// only): each pool runs the same serve.Lifecycle state machine as
	// the live engine, driven from the virtual clock, with its own
	// scale.Autoscaler deciding warm capacity. Per pool the lifecycle's
	// Max is that pool's instance count (Elastic.Max is ignored — the
	// CPUInstances/DSCSInstances split already sizes the pools) and Min
	// is Elastic.Min clamped to it. Nil keeps the fixed-capacity replay
	// bit for bit.
	Elastic *scale.Config
	// Faults is the scripted fault schedule (trace.ParseFaultScript),
	// replayed on the virtual clock (split layout only). Pool events target
	// pool names ("dscs", "cpu" or "cpu0".."cpuN-1"); drive events are
	// rejected — this sim models instances, not storage nodes. A pool-down
	// gates the pool's dispatch and cancels its in-flight executions, whose
	// tasks requeue (serve.PoolCore.Requeue); peers rescue the backlog
	// through the spill/steal machinery, which treats a dead pool as
	// unboundedly slow rather than idle.
	Faults []trace.FaultEvent
	// HedgeFactor arms tail-latency hedging (split layout only): an
	// execution that outlives HedgeFactor x the adopted service-p95 for its
	// benchmark on its class dispatches a duplicate on a healthy peer pool
	// with a free worker (serve.PoolCore.Hedge — borrowed outside the
	// submission ledger); the first completion wins. 0 disables; values
	// below 1 are rejected.
	HedgeFactor float64
}

// HybridStats is the outcome of a hybrid run.
type HybridStats struct {
	Policy    string
	Queue     metrics.Series
	Latency   *metrics.Sample
	Completed int
	Dropped   int
	// OnDSCS counts requests served by DSCS instances.
	OnDSCS int
	// Stolen counts tasks rebalanced between pool backlogs (split layout).
	Stolen int
	// Spilled counts arrivals rerouted to a CPU backlog at submit time.
	Spilled int
	// WithinSLO counts completions whose wall-clock latency fit the SLO
	// budget (0 when HybridConfig.SLO is unset).
	WithinSLO int
	// Served counts completions per pool (split layout; keys "dscs" and
	// "cpu", or "cpu0".."cpuN-1" with several CPU pools).
	Served map[string]int
	// WaitP95 is each pool's windowed queue-delay p95 at the end of the
	// run (split layout) — the signal adaptive balance keys on.
	WaitP95 map[string]time.Duration
	// ColdStarts, Suspends, and IdleCost sum the lifecycle tallies over
	// every pool (split layout with Elastic set): warming transitions
	// paid, slots suspended, and the warm-but-idle capacity integral.
	ColdStarts int
	Suspends   int
	IdleCost   time.Duration
	// Faults counts pool brown-outs applied; Requeued counts in-flight
	// tasks returned to their queue by a brown-out (split layout with
	// Faults).
	Faults, Requeued int
	// HedgesFired counts duplicate dispatches launched; HedgesWon counts
	// the duplicates that finished before their primary (split layout with
	// HedgeFactor).
	HedgesFired, HedgesWon int
	// Stranded counts tasks still queued when the run ends — nonzero only
	// when a fault script leaves a pool dead at the horizon with no rescue
	// path armed.
	Stranded int
}

// observeLatency folds one completion's wall-clock latency into the sample
// and the SLO tally.
func (st *HybridStats) observeLatency(lat, slo time.Duration) {
	st.Latency.Add(lat)
	if slo > 0 && lat <= slo {
		st.WithinSLO++
	}
}

// RunHybrid replays the trace under the configured policy.
func RunHybrid(tr *trace.Trace, cfg HybridConfig, seed uint64) (*HybridStats, error) {
	if cfg.CPUInstances+cfg.DSCSInstances <= 0 || cfg.QueueDepth <= 0 || cfg.Service == nil {
		return nil, fmt.Errorf("cluster: incomplete hybrid config")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Second
	}
	if cfg.CPUPools > 1 && !cfg.SplitQueues {
		return nil, fmt.Errorf("cluster: CPUPools needs SplitQueues")
	}
	if cfg.AdaptiveBalance && !cfg.SplitQueues {
		return nil, fmt.Errorf("cluster: AdaptiveBalance needs SplitQueues")
	}
	if cfg.Elastic != nil && !cfg.SplitQueues {
		return nil, fmt.Errorf("cluster: Elastic needs SplitQueues")
	}
	if cfg.HedgeFactor != 0 && cfg.HedgeFactor < 1 {
		return nil, fmt.Errorf("cluster: HedgeFactor %g must be 0 (off) or >= 1", cfg.HedgeFactor)
	}
	if (len(cfg.Faults) > 0 || cfg.HedgeFactor != 0) && !cfg.SplitQueues {
		return nil, fmt.Errorf("cluster: Faults and HedgeFactor need SplitQueues")
	}
	if cfg.SplitQueues {
		return runSplitHybrid(tr, cfg, seed)
	}
	return runSharedHybrid(tr, cfg, seed)
}

// hybridPricing is the arrival-pricing state shared by both layouts: the
// static or drifted belief, optionally blended toward observed per-class
// latency digests.
type hybridPricing struct {
	estimate HybridServiceModel
	obs      *metrics.Observatory
	// priced marks the regimes where tasks carry a belief (a drifted
	// Estimate, or a digest blend) rather than the truth; execution must
	// then re-derive the true base from the Service model, which
	// consequently has to be deterministic per slug in those regimes (it
	// is evaluated at both arrival and dispatch). Unpriced runs read the
	// task fields directly — the exact pre-adaptive behavior, one
	// evaluation per request.
	priced bool
}

func newHybridPricing(cfg HybridConfig) *hybridPricing {
	p := &hybridPricing{estimate: cfg.Estimate}
	if p.estimate == nil {
		p.estimate = cfg.Service
	}
	if cfg.AdaptiveEstimates {
		p.obs = metrics.NewObservatory(cfg.EstimateWindow, cfg.EstimateWarmup)
	}
	p.priced = cfg.Estimate != nil || p.obs != nil
	return p
}

// price evaluates the scheduler's belief for one arrival.
func (p *hybridPricing) price(slug string) (cpu, dscs time.Duration, accel int) {
	cpu, dscs, accel = p.estimate(slug)
	if p.obs != nil {
		// The policies' pricing blends the belief toward the observed
		// per-class p50 — cold benchmarks keep the prior.
		cpu = p.obs.Blend(slug, sched.ClassCPU.String(), cpu)
		dscs = p.obs.Blend(slug, sched.ClassDSCS.String(), dscs)
	}
	return cpu, dscs, accel
}

// service samples the actual execution time from the true model — the
// scheduler's belief must not contaminate what really runs.
func (p *hybridPricing) service(cfg HybridConfig, rng *sim.RNG, t sched.HybridTask, class sched.InstanceClass) time.Duration {
	base := t.CPUService
	if p.priced {
		cpu, dscs, _ := cfg.Service(t.Payload)
		base = cpu
		if class == sched.ClassDSCS {
			base = dscs
		}
	} else if class == sched.ClassDSCS {
		base = t.DSCSService
	}
	if cfg.Jitter <= 0 {
		return base
	}
	return sim.LogNormal{Median: base, Sigma: cfg.Jitter}.Sample(rng)
}

// observe folds one completion into the estimate digests.
func (p *hybridPricing) observe(payload string, class sched.InstanceClass, elapsed time.Duration) {
	if p.obs != nil {
		p.obs.Record(payload, class.String(), elapsed)
	}
}

func newHybridStats(tr *trace.Trace, cfg HybridConfig) *HybridStats {
	policyName := "fcfs"
	if cfg.Policy != nil {
		policyName = cfg.Policy.Name()
	}
	return &HybridStats{
		Policy:  policyName,
		Queue:   metrics.Series{Name: "queued"},
		Latency: metrics.NewSample(len(tr.Requests)),
	}
}

// runSharedHybrid is the classic layout: one shared queue drained by both
// classes (serve.HybridCore), no rebalancing to do.
func runSharedHybrid(tr *trace.Trace, cfg HybridConfig, seed uint64) (*HybridStats, error) {
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)
	core, err := serve.NewHybridCore(cfg.CPUInstances, cfg.DSCSInstances, cfg.QueueDepth, cfg.Policy)
	if err != nil {
		return nil, err
	}
	st := newHybridStats(tr, cfg)
	pricing := newHybridPricing(cfg)

	var pump func()
	pump = func() {
		for {
			task, class, ok := core.Dispatch(engine.Now())
			if !ok {
				return
			}
			if class == sched.ClassDSCS {
				st.OnDSCS++
			}
			arrived := task.Arrived
			elapsed := pricing.service(cfg, rng, task, class)
			engine.After(elapsed, func() {
				core.Complete(class, 1)
				pricing.observe(task.Payload, class, elapsed)
				st.Completed++
				st.observeLatency(engine.Now()-arrived, cfg.SLO)
				pump()
			})
		}
	}

	for _, r := range tr.Requests {
		req := r
		engine.At(req.At, func() {
			cpu, dscs, accel := pricing.price(req.Benchmark)
			core.Submit(sched.HybridTask{
				ID: req.ID, Arrived: engine.Now(), Payload: req.Benchmark,
				CPUService: cpu, DSCSService: dscs, AccelFuncs: accel,
			})
			pump()
		})
	}
	sampleHybridQueue(engine, tr, cfg, st, core.QueueLen)

	engine.Run()
	st.Dropped = core.Dropped()
	if err := core.Conservation(); err != nil {
		return nil, err
	}
	return st, finishHybrid(tr, st)
}

// splitExec is one in-flight execution in the split layout's fault/hedge
// model: pool is the dispatch pool (the accounting owner throughout), done
// marks a completion already credited (by the primary or a winning hedge),
// cancelled marks a pool-down requeue, and hedged makes the duplicate
// dispatch one-shot per execution.
type splitExec struct {
	task            sched.HybridTask
	pool            int
	done, cancelled bool
	hedged          bool
}

// hedgeRun is one borrowed-worker duplicate execution: pool is the peer
// lending the worker, finished marks its completion event fired, cancelled
// marks the peer dying mid-hedge (the borrow is still returned at the event
// — the lease runs out on schedule — but the result is discarded).
type hedgeRun struct {
	pool                int
	finished, cancelled bool
}

// runSplitHybrid is the per-pool-backlog layout on serve.MultiCore: one
// DSCS pool plus CPUPools same-class CPU pools, rebalanced by submit-time
// spillover and drain-time stealing — keyed by the static depth thresholds
// or, under AdaptiveBalance, by the adopted wait-p95 gap between pools.
func runSplitHybrid(tr *trace.Trace, cfg HybridConfig, seed uint64) (*HybridStats, error) {
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)

	cpuPools := cfg.CPUPools
	if cpuPools <= 0 {
		cpuPools = 1
	}
	specs := make([]serve.PoolSpec, 0, cpuPools+1)
	for i := 0; i < cpuPools; i++ {
		// CPU instances split as evenly as the count allows, remainder to
		// the earliest pools.
		workers := cfg.CPUInstances / cpuPools
		if i < cfg.CPUInstances%cpuPools {
			workers++
		}
		name := sched.ClassCPU.String()
		if cpuPools > 1 {
			name = fmt.Sprintf("%s%d", sched.ClassCPU, i)
		}
		specs = append(specs, serve.PoolSpec{
			Name: name, Class: sched.ClassCPU, Workers: workers,
			QueueDepth: cfg.QueueDepth, Policy: cfg.Policy,
		})
	}
	dscsIdx := len(specs)
	specs = append(specs, serve.PoolSpec{
		Name: sched.ClassDSCS.String(), Class: sched.ClassDSCS,
		Workers: cfg.DSCSInstances, QueueDepth: cfg.QueueDepth, Policy: cfg.Policy,
	})
	mc, err := serve.NewMultiCore(specs)
	if err != nil {
		return nil, err
	}
	for _, ev := range cfg.Faults {
		if !ev.Kind.Pool() {
			return nil, fmt.Errorf("cluster: the hybrid sim models pool faults only, got %q", ev)
		}
		if mc.Index(ev.Target) < 0 {
			return nil, fmt.Errorf("cluster: fault script targets unknown pool %q", ev.Target)
		}
	}
	mc.SetWaitTuning(cfg.EstimateWindow, cfg.EstimateWarmup)
	st := newHybridStats(tr, cfg)
	st.Served = make(map[string]int)
	pricing := newHybridPricing(cfg)

	// Elastic: every pool drives the same lifecycle state machine as the
	// live engine, from this virtual clock. Pool capacity bounds come
	// from the instance split; ascs[i] is nil for zero-instance pools
	// (a CPU split finer than the instance count), which stay as built.
	var ascs []*scale.Autoscaler
	if cfg.Elastic != nil {
		ascs = make([]*scale.Autoscaler, mc.Pools())
		for i := 0; i < mc.Pools(); i++ {
			pool := mc.Pool(i)
			if pool.Workers() == 0 {
				continue
			}
			ec := *cfg.Elastic
			ec.Max = pool.Workers()
			if ec.Min > ec.Max {
				ec.Min = ec.Max
			}
			if err := ec.Validate(); err != nil {
				return nil, err
			}
			initial := ec.Min
			if ec.Mode == scale.ModeFixed {
				initial = ec.Max
			}
			lc, err := serve.NewLifecycle(serve.LifecycleConfig{
				Min: ec.Min, Max: ec.Max,
				ColdStart: ec.ColdStart, IdleLinger: ec.IdleLinger,
			}, initial, 0)
			if err != nil {
				return nil, err
			}
			if err := pool.AttachLifecycle(lc, 0); err != nil {
				return nil, err
			}
			if ascs[i], err = scale.New(ec, mc.Spec(i).Name); err != nil {
				return nil, err
			}
		}
	}

	onlyCPU := func(i int) bool { return i != dscsIdx }

	// steal is the pull half of rebalancing: a pool with free instances
	// and an empty backlog drains a peer's excess, capped at its free
	// capacity. The static threshold picks the deepest peer beyond the
	// depth count; adaptive balance picks the deepest peer whose adopted
	// wait-p95 gap over the thief has latched (serve.MultiCore.StealDonor).
	steal := func() int {
		if !cfg.AdaptiveBalance && cfg.StealThreshold <= 0 {
			return 0
		}
		stole := 0
		for to := 0; to < mc.Pools(); to++ {
			thief := mc.Pool(to)
			free := thief.Workers() - thief.Busy()
			// A dead thief never steals: its requeued in-flight work freed
			// workers that cannot dispatch, which would otherwise make the
			// grave look like the hungriest pool in the set.
			if free == 0 || thief.QueueLen() > 0 || !thief.Healthy() {
				continue
			}
			if cfg.AdaptiveBalance {
				from, ok := mc.StealDonor(to, nil)
				if !ok {
					continue
				}
				if depth := mc.Pool(from).QueueLen(); depth < free {
					free = depth
				}
				stole += len(mc.Steal(from, to, free))
				continue
			}
			from, excess := -1, 0
			for i := 0; i < mc.Pools(); i++ {
				if i == to {
					continue
				}
				// The static threshold steals cross-class only, exactly
				// like the live engine's static path: same-class
				// rebalancing is what AdaptiveBalance adds, and a replay
				// must not move work the deployed configuration would
				// leave queued. A dead donor bypasses both the class
				// restriction and the depth floor — its backlog has no
				// workers coming back for it, so any orphan justifies the
				// pull (the live engine's static path applies the same
				// bypass).
				alive := mc.Healthy(i)
				if alive && mc.Spec(i).Class == mc.Spec(to).Class {
					continue
				}
				floor := cfg.StealThreshold
				if !alive {
					floor = 0
				}
				if over := mc.Pool(i).QueueLen() - floor; over > excess {
					from, excess = i, over
				}
			}
			if from < 0 {
				continue
			}
			if excess < free {
				free = excess
			}
			stole += len(mc.Steal(from, to, free))
		}
		return stole
	}

	// dispatch drains the DSCS backlog first (it serves faster), then the
	// CPU pools in order — the same preference HybridCore.Dispatch applies.
	dispatch := func(now time.Duration) (sched.HybridTask, int, bool) {
		if t, ok := mc.Dispatch(dscsIdx, now); ok {
			return t, dscsIdx, true
		}
		for i := 0; i < dscsIdx; i++ {
			if t, ok := mc.Dispatch(i, now); ok {
				return t, i, true
			}
		}
		return sched.HybridTask{}, 0, false
	}

	var pump func()
	var tryHedge func(*splitExec)

	// Tracked only when a fault script or hedging is armed, so the classic
	// replays stay bit-identical: splitExec is one in-flight execution — a
	// pool-down cancels it (its completion event retires nothing and its
	// task requeues), a hedge duplicates it onto a peer and the first
	// finish wins. hedgeRun is one borrowed-worker duplicate; the host
	// pool dying cancels it too.
	var (
		inflight []*splitExec
		hedges   []*hedgeRun
	)
	faultsOn := len(cfg.Faults) > 0
	hedgeOn := cfg.HedgeFactor >= 1

	// hedgeThreshold prices one execution's patience: HedgeFactor x the
	// adopted service-p95 for the benchmark on the serving class — the
	// static belief until the estimate digests warm, exactly the pricing
	// the live engine's execHedged applies.
	hedgeThreshold := func(t sched.HybridTask, class sched.InstanceClass) time.Duration {
		static := t.CPUService
		if class == sched.ClassDSCS {
			static = t.DSCSService
		}
		q := static
		if pricing.obs != nil {
			q = pricing.obs.ServiceQuantile(t.Payload, class.String(), static, 0.95)
		}
		return time.Duration(float64(q) * cfg.HedgeFactor)
	}

	// Elastic drive, identical in shape to the Fig 13 sim's: fold virtual
	// time into every lifecycle, re-decide each pool's autoscaler target,
	// and arm a wake at the earliest lifecycle self-transition. Decisions
	// are rate-limited as in the live engine (the digest quantile reads
	// are not per-event work); any starved pool bypasses the limit.
	warmup := int64(cfg.EstimateWarmup)
	if warmup <= 0 {
		warmup = int64(metrics.DefaultWarmup)
	}
	const scaleInterval = 100 * time.Millisecond
	lastLifeWake := time.Duration(-1)
	lastDecide := time.Duration(-1)
	advanceScale := func() {
		if ascs == nil {
			return
		}
		now := engine.Now()
		mc.AdvanceLifecycles(now)
		starved := false
		for i, a := range ascs {
			p := mc.Pool(i)
			if a != nil && p.QueueLen() > 0 && p.Busy() >= p.Workers() {
				starved = true
				break
			}
		}
		if starved || lastDecide < 0 || now-lastDecide >= scaleInterval {
			lastDecide = now
			for i, a := range ascs {
				if a == nil {
					continue
				}
				p := mc.Pool(i)
				var waitP95 time.Duration
				if dg := mc.WaitDigest(i); dg != nil && dg.Count() >= warmup {
					waitP95 = dg.Quantile(serve.WaitQuantile)
				}
				desired := a.Desired(now, p.Busy(), p.QueueLen(), waitP95)
				if desired != p.Lifecycle().Desired() {
					p.ScaleTo(desired, now)
				}
			}
		}
		if evt, ok := mc.NextLifecycleEvent(); ok && evt != lastLifeWake {
			lastLifeWake = evt
			engine.At(evt, func() {
				if lastLifeWake == evt {
					lastLifeWake = -1
				}
				pump()
			})
		}
	}

	pump = func() {
		advanceScale()
		for {
			task, idx, ok := dispatch(engine.Now())
			if !ok {
				if steal() > 0 {
					continue
				}
				return
			}
			class := mc.Spec(idx).Class
			if class == sched.ClassDSCS {
				st.OnDSCS++
			}
			pool := mc.Spec(idx).Name
			arrived := task.Arrived
			elapsed := pricing.service(cfg, rng, task, class)
			var asc *scale.Autoscaler
			if ascs != nil {
				asc = ascs[idx]
			}
			var ex *splitExec
			if faultsOn || hedgeOn {
				ex = &splitExec{task: task, pool: idx}
				inflight = append(inflight, ex)
			}
			if hedgeOn {
				// The sim knows the true service time up front, so the
				// hedge timer only arms when the primary will actually
				// outlive its patience — the live engine's timer fires
				// blind and finds the primary already done, same outcome.
				if patience := hedgeThreshold(task, class); patience > 0 && patience < elapsed {
					engine.After(patience, func() { tryHedge(ex) })
				}
			}
			engine.After(elapsed, func() {
				if ex != nil {
					if ex.done || ex.cancelled {
						return
					}
					ex.done = true
				}
				mc.Complete(idx, 1)
				pricing.observe(task.Payload, class, elapsed)
				if asc != nil {
					asc.ObserveService(task.Payload, elapsed)
				}
				st.Completed++
				st.Served[pool]++
				st.observeLatency(engine.Now()-arrived, cfg.SLO)
				pump()
			})
		}
	}

	// tryHedge launches the duplicate dispatch for one straggling
	// execution: the first healthy peer pool (ascending index) with a free
	// worker lends it outside the submission ledger (serve.PoolCore.Hedge)
	// and races the primary. The dispatch pool stays the accounting owner
	// — a winning hedge completes the primary's ledger and frees the
	// primary's worker; the loser's event only returns the borrowed one.
	// One hedge per execution.
	tryHedge = func(ex *splitExec) {
		if ex.done || ex.cancelled || ex.hedged {
			return
		}
		ex.hedged = true
		for j := 0; j < mc.Pools(); j++ {
			if j == ex.pool || !mc.Healthy(j) || !mc.Pool(j).Hedge() {
				continue
			}
			st.HedgesFired++
			hr := &hedgeRun{pool: j}
			if faultsOn {
				hedges = append(hedges, hr)
			}
			hclass := mc.Spec(j).Class
			hname := mc.Spec(j).Name
			helapsed := pricing.service(cfg, rng, ex.task, hclass)
			engine.After(helapsed, func() {
				hr.finished = true
				mc.Pool(hr.pool).HedgeDone()
				if hr.cancelled || ex.done || ex.cancelled {
					pump()
					return
				}
				ex.done = true
				st.HedgesWon++
				mc.Complete(ex.pool, 1)
				pricing.observe(ex.task.Payload, hclass, helapsed)
				st.Completed++
				st.Served[hname]++
				st.observeLatency(engine.Now()-ex.task.Arrived, cfg.SLO)
				pump()
			})
			return
		}
	}

	// applyFault drives the scripted schedule. A pool-down cancels the
	// pool's in-flight executions one by one — each Requeue frees exactly
	// the one worker its dispatch occupied and returns its task by arrival
	// order — and cancels hedges the dead pool was hosting. A pool-up
	// resumes dispatch at the pre-fault capacity. Both re-pump: peers
	// steal orphans the moment they exist, and a recovered pool drains its
	// preserved backlog.
	applyFault := func(ev trace.FaultEvent) {
		now := engine.Now()
		i := mc.Index(ev.Target)
		if ev.Kind == trace.FaultPoolUp {
			mc.RecoverPool(i, now)
			pump()
			return
		}
		if !mc.Healthy(i) {
			return
		}
		mc.FailPool(i, now)
		keptE := inflight[:0]
		for _, ex := range inflight {
			if ex.done || ex.cancelled {
				continue
			}
			if ex.pool == i {
				ex.cancelled = true
				mc.Requeue(i, []sched.HybridTask{ex.task})
				continue
			}
			keptE = append(keptE, ex)
		}
		inflight = keptE
		keptH := hedges[:0]
		for _, hr := range hedges {
			if hr.finished || hr.cancelled {
				continue
			}
			if hr.pool == i {
				hr.cancelled = true
				continue
			}
			keptH = append(keptH, hr)
		}
		hedges = keptH
		pump()
	}
	for _, ev := range cfg.Faults {
		ev := ev
		engine.At(ev.At, func() { applyFault(ev) })
	}

	// spillTarget picks the CPU pool an over-threshold (or over-wait)
	// arrival lands on: least-queued under the static threshold,
	// least-wait under adaptive balance (serve.MultiCore.BalanceTarget).
	// A dead accelerated tier reroutes arrivals to the least-queued
	// healthy CPU pool whenever any balancing is armed — the same
	// dead-pool reroute the live engine's enqueue applies.
	spillTarget := func() (int, bool) {
		if !mc.Healthy(dscsIdx) && (cfg.AdaptiveBalance || cfg.SpilloverThreshold > 0) {
			best, depth, found := 0, 0, false
			for i := 0; i < dscsIdx; i++ {
				if !mc.Healthy(i) {
					continue
				}
				if d := mc.Pool(i).QueueLen(); !found || d < depth {
					best, depth, found = i, d, true
				}
			}
			return best, found
		}
		if cfg.AdaptiveBalance {
			return mc.BalanceTarget(dscsIdx, onlyCPU)
		}
		if cfg.SpilloverThreshold <= 0 ||
			mc.Pool(dscsIdx).QueueLen() < cfg.SpilloverThreshold {
			return 0, false
		}
		best, depth := 0, 0
		for i := 0; i < dscsIdx; i++ {
			if d := mc.Pool(i).QueueLen(); i == 0 || d < depth {
				best, depth = i, d
			}
		}
		return best, true
	}

	for _, r := range tr.Requests {
		req := r
		engine.At(req.At, func() {
			cpu, dscs, accel := pricing.price(req.Benchmark)
			task := sched.HybridTask{
				ID: req.ID, Arrived: engine.Now(), Payload: req.Benchmark,
				CPUService: cpu, DSCSService: dscs, AccelFuncs: accel,
			}
			// Arrivals target the accelerated backlog; past the spillover
			// trigger they land on a CPU backlog instead — the same
			// submit-time reroute the live engine applies.
			idx := dscsIdx
			if to, ok := spillTarget(); ok {
				idx = to
			}
			if ascs != nil && ascs[idx] != nil {
				// Offered load on the pool the arrival targets, dropped
				// arrivals included — the pre-warm floor prices demand,
				// not admitted throughput.
				ascs[idx].ObserveArrival(req.Benchmark, engine.Now())
			}
			if mc.SubmitTo(idx, task) && idx != dscsIdx {
				st.Spilled++
			}
			pump()
		})
	}
	sampleHybridQueue(engine, tr, cfg, st, mc.QueueLen)

	engine.Run()
	st.Dropped = mc.Dropped()
	st.Stolen = mc.Stolen()
	st.Faults = mc.Faults()
	st.Requeued = mc.Requeued()
	st.Stranded = mc.QueueLen()
	st.WaitP95 = make(map[string]time.Duration, mc.Pools())
	for i := 0; i < mc.Pools(); i++ {
		st.WaitP95[mc.Spec(i).Name] = mc.WaitQuantileOf(i, serve.WaitQuantile)
	}
	if ascs != nil {
		// Close every pool's idle-cost integral at the common sampling
		// horizon so the tallies compare across configurations.
		mc.AdvanceLifecycles(tr.Duration + 2*time.Minute)
		for i := 0; i < mc.Pools(); i++ {
			if lc := mc.Pool(i).Lifecycle(); lc != nil {
				st.ColdStarts += lc.ColdStarts()
				st.Suspends += lc.Suspends()
				st.IdleCost += lc.IdleCost()
			}
		}
	}
	if err := mc.Conservation(); err != nil {
		return nil, err
	}
	return st, finishHybrid(tr, st)
}

// sampleHybridQueue arms the queue-occupancy sampler across the trace
// (plus drain tail).
func sampleHybridQueue(engine *sim.Engine, tr *trace.Trace, cfg HybridConfig, st *HybridStats, queueLen func() int) {
	horizon := tr.Duration + 2*time.Minute
	for t := time.Duration(0); t <= horizon; t += cfg.SampleEvery {
		at := t
		engine.At(at, func() {
			st.Queue.Add(at, float64(queueLen()))
		})
	}
}

// finishHybrid asserts the run lost nothing: every arrival completed, was
// dropped at a queue bound, or — only when a fault script left a pool dead
// at the horizon — is still queued and counted stranded.
func finishHybrid(tr *trace.Trace, st *HybridStats) error {
	if st.Completed+st.Dropped+st.Stranded != len(tr.Requests) {
		return fmt.Errorf("cluster: hybrid lost requests: %d completed + %d dropped + %d stranded != %d arrived",
			st.Completed, st.Dropped, st.Stranded, len(tr.Requests))
	}
	return nil
}
