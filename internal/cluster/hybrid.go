// hybrid.go replays traces against a heterogeneous pool (CPU + DSCS
// instances) under a pluggable scheduling policy — the evaluation harness
// for the paper's Section 5.3 scheduling future-work. The pool accounting
// is serve.HybridCore, the same two-class scheduling core the live engine's
// pools are built on, driven here from the virtual clock.
package cluster

import (
	"fmt"
	"time"

	"dscs/internal/metrics"
	"dscs/internal/sched"
	"dscs/internal/serve"
	"dscs/internal/sim"
	"dscs/internal/trace"
)

// HybridServiceModel returns the expected service times of a benchmark on
// each instance class plus its acceleratable-function count.
type HybridServiceModel func(slug string) (cpu, dscs time.Duration, accelFuncs int)

// HybridConfig parameterizes a hybrid run.
type HybridConfig struct {
	CPUInstances, DSCSInstances int
	QueueDepth                  int
	Policy                      sched.Policy
	Service                     HybridServiceModel
	// Jitter scales service times with a lognormal of this sigma.
	Jitter float64
	// SampleEvery sets the telemetry sampling period.
	SampleEvery time.Duration
}

// HybridStats is the outcome of a hybrid run.
type HybridStats struct {
	Policy    string
	Queue     metrics.Series
	Latency   *metrics.Sample
	Completed int
	Dropped   int
	// OnDSCS counts requests served by DSCS instances.
	OnDSCS int
}

// RunHybrid replays the trace under the configured policy.
func RunHybrid(tr *trace.Trace, cfg HybridConfig, seed uint64) (*HybridStats, error) {
	if cfg.CPUInstances+cfg.DSCSInstances <= 0 || cfg.QueueDepth <= 0 || cfg.Service == nil {
		return nil, fmt.Errorf("cluster: incomplete hybrid config")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Second
	}
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)
	core, err := serve.NewHybridCore(cfg.CPUInstances, cfg.DSCSInstances,
		cfg.QueueDepth, cfg.Policy)
	if err != nil {
		return nil, err
	}
	policyName := "fcfs"
	if cfg.Policy != nil {
		policyName = cfg.Policy.Name()
	}
	st := &HybridStats{
		Policy:  policyName,
		Queue:   metrics.Series{Name: "queued"},
		Latency: metrics.NewSample(len(tr.Requests)),
	}

	service := func(t sched.HybridTask, class sched.InstanceClass) time.Duration {
		base := t.CPUService
		if class == sched.ClassDSCS {
			base = t.DSCSService
		}
		if cfg.Jitter <= 0 {
			return base
		}
		return sim.LogNormal{Median: base, Sigma: cfg.Jitter}.Sample(rng)
	}

	var pump func()
	pump = func() {
		for {
			task, class, ok := core.Dispatch(engine.Now())
			if !ok {
				return
			}
			if class == sched.ClassDSCS {
				st.OnDSCS++
			}
			arrived := task.Arrived
			engine.After(service(task, class), func() {
				core.Complete(class, 1)
				st.Completed++
				st.Latency.Add(engine.Now() - arrived)
				pump()
			})
		}
	}

	for _, r := range tr.Requests {
		req := r
		engine.At(req.At, func() {
			cpu, dscs, accel := cfg.Service(req.Benchmark)
			core.Submit(sched.HybridTask{
				ID: req.ID, Arrived: engine.Now(), Payload: req.Benchmark,
				CPUService: cpu, DSCSService: dscs, AccelFuncs: accel,
			})
			pump()
		})
	}
	horizon := tr.Duration + 2*time.Minute
	for t := time.Duration(0); t <= horizon; t += cfg.SampleEvery {
		at := t
		engine.At(at, func() {
			st.Queue.Add(at, float64(core.QueueLen()))
		})
	}

	engine.Run()
	st.Dropped = core.Dropped()
	if err := core.Conservation(); err != nil {
		return nil, err
	}
	if st.Completed+st.Dropped != len(tr.Requests) {
		return nil, fmt.Errorf("cluster: hybrid lost requests")
	}
	return st, nil
}
