// hybrid.go replays traces against a heterogeneous pool (CPU + DSCS
// instances) under a pluggable scheduling policy — the evaluation harness
// for the paper's Section 5.3 scheduling future-work. The pool accounting
// is serve.HybridCore, the same two-class scheduling core the live engine's
// pools are built on, driven here from the virtual clock.
package cluster

import (
	"fmt"
	"time"

	"dscs/internal/metrics"
	"dscs/internal/sched"
	"dscs/internal/serve"
	"dscs/internal/sim"
	"dscs/internal/trace"
)

// HybridServiceModel returns the expected service times of a benchmark on
// each instance class plus its acceleratable-function count. When a run
// prices tasks with a separate belief (HybridConfig.Estimate or
// AdaptiveEstimates), the Service model is evaluated again at dispatch to
// obtain the true execution time, so it must be a pure function of the
// slug in those regimes.
type HybridServiceModel func(slug string) (cpu, dscs time.Duration, accelFuncs int)

// HybridConfig parameterizes a hybrid run.
type HybridConfig struct {
	CPUInstances, DSCSInstances int
	QueueDepth                  int
	Policy                      sched.Policy
	Service                     HybridServiceModel
	// Jitter scales service times with a lognormal of this sigma.
	Jitter float64
	// SampleEvery sets the telemetry sampling period.
	SampleEvery time.Duration
	// SplitQueues gives each class its own backlog
	// (serve.NewSplitHybridCore), the shape of a deployment where requests
	// target the accelerated tier: arrivals land on the DSCS backlog and
	// the CPU side only sees work through spillover or stealing. The
	// default shared queue (false) reproduces the classic runs bit for
	// bit.
	SplitQueues bool
	// StealThreshold arms pull-based rebalancing over split backlogs: a
	// class whose own backlog is empty pulls the peer's oldest queued work
	// once the peer backlog exceeds this depth (0 disables; split layout
	// only).
	StealThreshold int
	// SpilloverThreshold reroutes an arrival onto the CPU backlog at
	// submit time once the DSCS backlog is this deep (0 disables; split
	// layout only).
	SpilloverThreshold int
	// Estimate, when set, is the scheduler's belief about service times:
	// tasks are priced with it while Service still drives actual
	// execution — the regime where an offline profile has drifted from
	// the hardware. Nil prices with Service itself (exact knowledge, the
	// earlier behavior).
	Estimate HybridServiceModel
	// AdaptiveEstimates blends each arrival's pricing toward the observed
	// per-class p50 latency digests (metrics.Observatory), pulling a
	// drifted Estimate back to measurement — the policies' half of the
	// live engine's serve.Options.AdaptiveEstimates, on the virtual clock.
	AdaptiveEstimates bool
	// EstimateWarmup and EstimateWindow tune the digests (defaults
	// metrics.DefaultWarmup / metrics.DefaultWindow).
	EstimateWarmup, EstimateWindow int
}

// HybridStats is the outcome of a hybrid run.
type HybridStats struct {
	Policy    string
	Queue     metrics.Series
	Latency   *metrics.Sample
	Completed int
	Dropped   int
	// OnDSCS counts requests served by DSCS instances.
	OnDSCS int
	// Stolen counts tasks rebalanced between class backlogs (split layout).
	Stolen int
	// Spilled counts arrivals rerouted to the CPU backlog at submit time.
	Spilled int
}

// RunHybrid replays the trace under the configured policy.
func RunHybrid(tr *trace.Trace, cfg HybridConfig, seed uint64) (*HybridStats, error) {
	if cfg.CPUInstances+cfg.DSCSInstances <= 0 || cfg.QueueDepth <= 0 || cfg.Service == nil {
		return nil, fmt.Errorf("cluster: incomplete hybrid config")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 5 * time.Second
	}
	engine := sim.NewEngine()
	rng := sim.NewRNG(seed)
	newCore := serve.NewHybridCore
	if cfg.SplitQueues {
		newCore = serve.NewSplitHybridCore
	}
	core, err := newCore(cfg.CPUInstances, cfg.DSCSInstances,
		cfg.QueueDepth, cfg.Policy)
	if err != nil {
		return nil, err
	}
	policyName := "fcfs"
	if cfg.Policy != nil {
		policyName = cfg.Policy.Name()
	}
	st := &HybridStats{
		Policy:  policyName,
		Queue:   metrics.Series{Name: "queued"},
		Latency: metrics.NewSample(len(tr.Requests)),
	}

	var obs *metrics.Observatory
	if cfg.AdaptiveEstimates {
		obs = metrics.NewObservatory(cfg.EstimateWindow, cfg.EstimateWarmup)
	}
	estimate := cfg.Estimate
	if estimate == nil {
		estimate = cfg.Service
	}

	// priced marks the regimes where tasks carry a belief (a drifted
	// Estimate, or a digest blend) rather than the truth; execution must
	// then re-derive the true base from cfg.Service, which consequently
	// has to be deterministic per slug in those regimes (it is evaluated
	// at both arrival and dispatch). Unpriced runs read the task fields
	// directly — the exact pre-adaptive behavior, one evaluation per
	// request.
	priced := cfg.Estimate != nil || obs != nil

	// service samples the actual execution time from the true model —
	// the scheduler's belief must not contaminate what really runs.
	service := func(t sched.HybridTask, class sched.InstanceClass) time.Duration {
		base := t.CPUService
		if priced {
			cpu, dscs, _ := cfg.Service(t.Payload)
			base = cpu
			if class == sched.ClassDSCS {
				base = dscs
			}
		} else if class == sched.ClassDSCS {
			base = t.DSCSService
		}
		if cfg.Jitter <= 0 {
			return base
		}
		return sim.LogNormal{Median: base, Sigma: cfg.Jitter}.Sample(rng)
	}

	// steal is the pull half of rebalancing on split backlogs: a class with
	// free instances and an empty backlog drains the peer's excess beyond
	// the threshold, capped at its free capacity.
	steal := func() int {
		if !cfg.SplitQueues || cfg.StealThreshold <= 0 {
			return 0
		}
		stole := 0
		for _, to := range []sched.InstanceClass{sched.ClassCPU, sched.ClassDSCS} {
			from := sched.ClassDSCS
			if to == sched.ClassDSCS {
				from = sched.ClassCPU
			}
			thief := core.Class(to)
			free := thief.Workers() - thief.Busy()
			if free == 0 || thief.QueueLen() > 0 {
				continue
			}
			excess := core.Class(from).QueueLen() - cfg.StealThreshold
			if excess <= 0 {
				continue
			}
			if excess < free {
				free = excess
			}
			stole += len(core.Steal(from, to, free))
		}
		return stole
	}

	var pump func()
	pump = func() {
		for {
			task, class, ok := core.Dispatch(engine.Now())
			if !ok {
				if steal() > 0 {
					continue
				}
				return
			}
			if class == sched.ClassDSCS {
				st.OnDSCS++
			}
			arrived := task.Arrived
			elapsed := service(task, class)
			engine.After(elapsed, func() {
				core.Complete(class, 1)
				if obs != nil {
					obs.Record(task.Payload, class.String(), elapsed)
				}
				st.Completed++
				st.Latency.Add(engine.Now() - arrived)
				pump()
			})
		}
	}

	for _, r := range tr.Requests {
		req := r
		engine.At(req.At, func() {
			cpu, dscs, accel := estimate(req.Benchmark)
			if obs != nil {
				// The policies' pricing blends the belief toward the
				// observed per-class p50 — cold benchmarks keep the prior.
				cpu = obs.Blend(req.Benchmark, sched.ClassCPU.String(), cpu)
				dscs = obs.Blend(req.Benchmark, sched.ClassDSCS.String(), dscs)
			}
			task := sched.HybridTask{
				ID: req.ID, Arrived: engine.Now(), Payload: req.Benchmark,
				CPUService: cpu, DSCSService: dscs, AccelFuncs: accel,
			}
			if cfg.SplitQueues {
				// Arrivals target the accelerated backlog; past the
				// spillover threshold they land on the CPU backlog instead
				// — the same submit-time reroute the live engine applies.
				class := sched.ClassDSCS
				if cfg.SpilloverThreshold > 0 &&
					core.Class(sched.ClassDSCS).QueueLen() >= cfg.SpilloverThreshold {
					class = sched.ClassCPU
				}
				if core.SubmitTo(class, task) && class == sched.ClassCPU {
					st.Spilled++
				}
			} else {
				core.Submit(task)
			}
			pump()
		})
	}
	horizon := tr.Duration + 2*time.Minute
	for t := time.Duration(0); t <= horizon; t += cfg.SampleEvery {
		at := t
		engine.At(at, func() {
			st.Queue.Add(at, float64(core.QueueLen()))
		})
	}

	engine.Run()
	st.Dropped = core.Dropped()
	st.Stolen = core.Stolen()
	if err := core.Conservation(); err != nil {
		return nil, err
	}
	if st.Completed+st.Dropped != len(tr.Requests) {
		return nil, fmt.Errorf("cluster: hybrid lost requests")
	}
	return st, nil
}
