package cluster

import (
	"testing"
	"time"

	"dscs/internal/sched"
)

// TestAdaptiveFormerGolden is the adaptive-estimation acceptance scenario
// on the discrete-event rack: the scheduler's static estimate believes
// every benchmark serves in 1ms, while the true service time is 30ms — a
// 30x drift of the kind a redeployed model or a contended drive produces.
// The SLO-aware former prices its holds with `arrival + SLO - estimate`,
// so the static regime holds batches ~29ms too long and blows the budget;
// with AdaptiveEstimates the digests learn the true p95 after the warmup
// and the former releases early enough to finish inside the SLO. Both
// regimes run the identical trace and seed; adaptive-on must complete
// strictly more within-SLO requests, and the seeded counts are pinned as
// goldens so a regression in either pricing path shows its hand.
func TestAdaptiveFormerGolden(t *testing.T) {
	tr := smallTrace(t, 60)
	base := Config{
		Instances: 8, QueueDepth: 2000,
		Service:     flatService(30 * time.Millisecond),
		SampleEvery: time.Second,
		MaxBatch:    8, BatchLinger: 150 * time.Millisecond,
		GlobalBatch: true, BatchSLO: 100 * time.Millisecond,
		StaticEstimate: func(string) time.Duration { return time.Millisecond },
		EstimateWarmup: 16, EstimateWindow: 128,
	}

	run := func(adaptive bool) *Stats {
		cfg := base
		cfg.AdaptiveEstimates = adaptive
		st, err := Run(tr, cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	off := run(false)
	on := run(true)

	// Same trace, same completions — only the release timing may differ.
	if off.Completed != on.Completed || off.Dropped != 0 || on.Dropped != 0 {
		t.Fatalf("regimes diverged in throughput: off %d/%d, on %d/%d",
			off.Completed, off.Dropped, on.Completed, on.Dropped)
	}
	if on.WithinSLO <= off.WithinSLO {
		t.Fatalf("adaptive-on must complete more within-SLO requests: on=%d off=%d",
			on.WithinSLO, off.WithinSLO)
	}
	// The shift must be a regime change, not a rounding artifact: the
	// static pricing misses the budget for nearly everything the former
	// holds to its due instant (released at SLO-1ms, finishing ~29ms
	// late), while the warmed adaptive pricing fits the bulk back in.
	if frac := float64(on.WithinSLO) / float64(on.Completed); frac < 0.9 {
		t.Errorf("adaptive-on within-SLO fraction = %.3f, want >= 0.9", frac)
	}
	if frac := float64(off.WithinSLO) / float64(off.Completed); frac > 0.5 {
		t.Errorf("adaptive-off within-SLO fraction = %.3f, want the static regime to miss", frac)
	}

	// Seeded goldens (trace seed 1, run seed 11) pin both regimes.
	type golden struct{ completed, batches, formed, withinSLO int }
	for _, pin := range []struct {
		name string
		st   *Stats
		want golden
	}{
		{"adaptive-off", off, golden{7118, 4091, 4091, 2120}},
		{"adaptive-on", on, golden{7118, 4635, 4635, 6967}},
	} {
		if pin.st.Completed != pin.want.completed || pin.st.Batches != pin.want.batches ||
			pin.st.Formed != pin.want.formed || pin.st.WithinSLO != pin.want.withinSLO {
			t.Errorf("%s: completed/batches/formed/withinSLO = %d/%d/%d/%d, pinned %d/%d/%d/%d",
				pin.name, pin.st.Completed, pin.st.Batches, pin.st.Formed, pin.st.WithinSLO,
				pin.want.completed, pin.want.batches, pin.want.formed, pin.want.withinSLO)
		}
	}

	// Determinism: the adaptive path must stay reproducible per seed.
	again := run(true)
	if again.WithinSLO != on.WithinSLO || again.Batches != on.Batches {
		t.Error("adaptive runs must be deterministic per seed")
	}
}

// TestHybridAdaptiveBlendRecoversDriftedEstimates: the hybrid policies
// price with HybridConfig.Estimate — here an offline profile whose
// CPU-cost ordering is inverted against the truth, which makes the
// criticality policy systematically send short work to the scarce DSCS
// tier. AdaptiveEstimates blends pricing back toward the observed
// per-class p50, so the drifted profile must recover: mean latency with
// adaptation beats the drifted run without it.
func TestHybridAdaptiveBlendRecoversDriftedEstimates(t *testing.T) {
	tr := hybridTrace(t)
	// The drifted belief: every benchmark's costs inverted around 580ms,
	// so expensive work looks cheap and vice versa.
	inverted := func(slug string) (cpu, dscs time.Duration, accel int) {
		c, _, a := mixedService(slug)
		cpu = 580*time.Millisecond - c
		return cpu, cpu / 5, a
	}
	run := func(adaptive bool) *HybridStats {
		st, err := RunHybrid(tr, HybridConfig{
			CPUInstances: 28, DSCSInstances: 6, QueueDepth: 100000,
			Policy: sched.CriticalityPolicy{}, Service: mixedService,
			Estimate: inverted, Jitter: 0.15, SampleEvery: 5 * time.Second,
			AdaptiveEstimates: adaptive, EstimateWarmup: 16,
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	drifted := run(false)
	adapted := run(true)
	if drifted.Completed != len(tr.Requests) || adapted.Completed != len(tr.Requests) {
		t.Fatalf("lost requests: drifted %d adapted %d of %d",
			drifted.Completed, adapted.Completed, len(tr.Requests))
	}
	d := drifted.Latency.Mean()
	a := adapted.Latency.Mean()
	if a >= d {
		t.Errorf("adaptive blending must recover the drifted profile: adapted %v vs drifted %v", a, d)
	}
	t.Logf("mean latency: drifted=%v adapted=%v (%.1f%% better)",
		d, a, 100*(1-float64(a)/float64(d)))
}

// TestHybridEstimateNilMatchesSeed: leaving Estimate and AdaptiveEstimates
// unset must reproduce the classic exact-knowledge runs bit for bit — the
// pricing refactor may not disturb the pinned equivalence goldens.
func TestHybridEstimateNilMatchesSeed(t *testing.T) {
	tr := hybridTrace(t)
	st := runPolicy(t, tr, sched.CriticalityPolicy{})
	if st.Completed != 33819 || st.OnDSCS != 14249 {
		t.Fatalf("completed/onDSCS = %d/%d, want the pinned 33819/14249", st.Completed, st.OnDSCS)
	}
}
