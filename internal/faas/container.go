// container.go models function containers and cold starts: image pull from
// a registry, layer unpack, health check, and model-weight staging. Cold
// starts hit both the baseline and DSCS-Serverless (Section 5.3 / Figure 17);
// DSCS containers carry quantized int8 weights and stage them into the DSA
// over the drive's P2P path.
package faas

import (
	"time"

	"dscs/internal/model"
	"dscs/internal/tensor"
	"dscs/internal/units"
)

// Image is a container image for one function.
type Image struct {
	Name string
	// Base is the runtime layer stack (language runtime, libraries,
	// drivers); Weights is the model layer.
	Base    units.Bytes
	Weights units.Bytes
}

// Size is the full image size.
func (i Image) Size() units.Bytes { return i.Base + i.Weights }

// ImageFor builds the function image for a model at the platform's weight
// precision (fp32 on CPU/GPU-class platforms, int8 on the DSA).
func ImageFor(name string, g *model.Graph, d tensor.DType, base units.Bytes) Image {
	return Image{
		Name:    name,
		Base:    base,
		Weights: units.Bytes(g.WeightBytes(d)),
	}
}

// ColdStartModel parameterizes the cold path.
type ColdStartModel struct {
	// RegistryRTT and RegistryBW describe the image registry connection.
	RegistryRTT time.Duration
	RegistryBW  units.Bandwidth
	// UnpackBW is layer decompression + filesystem materialization.
	UnpackBW units.Bandwidth
	// HealthCheck is the readiness probe after start.
	HealthCheck time.Duration
	// WeightLoadBW is the rate of staging weights into the executing
	// device's memory (host DRAM for CPU-class platforms).
	WeightLoadBW units.Bandwidth
}

// DefaultColdStart returns a datacenter-typical cold path: a near registry
// with a warm CDN layer.
func DefaultColdStart() ColdStartModel {
	return ColdStartModel{
		RegistryRTT:  15 * time.Millisecond,
		RegistryBW:   3 * units.GBps, // in-datacenter registry mirror
		UnpackBW:     3 * units.GBps,
		HealthCheck:  15 * time.Millisecond,
		WeightLoadBW: 8 * units.GBps,
	}
}

// Pull returns the time to pull, unpack, and health-check an image.
func (m ColdStartModel) Pull(img Image) time.Duration {
	return m.RegistryRTT +
		m.RegistryBW.TransferTime(img.Size()) +
		m.UnpackBW.TransferTime(img.Size()) +
		m.HealthCheck
}

// StageWeights returns the time to load model weights into device memory.
func (m ColdStartModel) StageWeights(img Image) time.Duration {
	return m.WeightLoadBW.TransferTime(img.Weights)
}

// Cold returns the full cold-start cost of an image on a host-memory
// platform.
func (m ColdStartModel) Cold(img Image) time.Duration {
	return m.Pull(img) + m.StageWeights(img)
}

// KeepWarmPolicy retains function state after an invocation: containers on
// the node, weights in the DSA's DRAM (Section 5.3).
type KeepWarmPolicy struct {
	// TTL is how long a function stays warm after its last invocation.
	TTL time.Duration
}

// DefaultKeepWarm mirrors common provider policies (minutes of residency).
func DefaultKeepWarm() KeepWarmPolicy {
	return KeepWarmPolicy{TTL: 10 * time.Minute}
}

// WarmState tracks per-function warmth on one node.
type WarmState struct {
	policy KeepWarmPolicy
	last   map[string]time.Duration // function -> last-used virtual time
}

// NewWarmState returns an empty warm tracker.
func NewWarmState(policy KeepWarmPolicy) *WarmState {
	return &WarmState{policy: policy, last: make(map[string]time.Duration)}
}

// Warm reports whether the function is warm at virtual time now, and
// records the invocation.
func (w *WarmState) Warm(fn string, now time.Duration) bool {
	lastUsed, seen := w.last[fn]
	w.last[fn] = now
	return seen && now-lastUsed <= w.policy.TTL
}

// Evict removes a function's warm state.
func (w *WarmState) Evict(fn string) { delete(w.last, fn) }
