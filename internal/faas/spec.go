// spec.go defines function and application specifications: the deployment
// metadata developers provide (the paper's extended OpenFaaS YAML with
// in-storage acceleration hints) and its parser.
package faas

import (
	"fmt"
	"strings"
	"time"

	"dscs/internal/units"
	"dscs/internal/workload"
)

// FunctionSpec is one function's deployment configuration.
type FunctionSpec struct {
	Name  string
	Image string
	// Accelerated is the deployment-time hint marking the function as
	// runnable on an in-storage DSA (Section 5.1's YAML extension).
	Accelerated bool
	// Domain names the accelerator domain the function belongs to.
	Domain  string
	Timeout time.Duration
	Memory  units.Bytes
}

// Validate rejects incomplete specs.
func (f FunctionSpec) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("faas: function with empty name")
	}
	if f.Image == "" {
		return fmt.Errorf("faas: function %q has no image", f.Name)
	}
	if f.Timeout <= 0 {
		return fmt.Errorf("faas: function %q has no timeout", f.Name)
	}
	if f.Accelerated && f.Domain == "" {
		return fmt.Errorf("faas: accelerated function %q needs a domain", f.Name)
	}
	return nil
}

// Application is a DAG of functions; the Table 1 pipelines are chains.
type Application struct {
	Name      string
	Functions map[string]*FunctionSpec
	Chain     []string // invocation order
	Storage   string   // bucket the functions exchange data through
}

// Validate checks chain/function consistency.
func (a *Application) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("faas: application with empty name")
	}
	if len(a.Chain) == 0 {
		return fmt.Errorf("faas: application %q has an empty chain", a.Name)
	}
	for _, fn := range a.Chain {
		spec, ok := a.Functions[fn]
		if !ok {
			return fmt.Errorf("faas: application %q chains unknown function %q", a.Name, fn)
		}
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// AcceleratedPrefix returns the leading run of accelerated functions in the
// chain — the group DSCS-Serverless maps onto one DSCS-Drive (chained
// functions sharing a DSA stay on the drive, Section 5.3).
func (a *Application) AcceleratedPrefix() []string {
	var out []string
	for _, fn := range a.Chain {
		if spec := a.Functions[fn]; spec != nil && spec.Accelerated {
			out = append(out, fn)
			continue
		}
		break
	}
	return out
}

// ParseApplication parses a deployment YAML into an Application.
func ParseApplication(src string) (*Application, error) {
	root, err := ParseYAML(src)
	if err != nil {
		return nil, err
	}
	app := &Application{
		Name:      root.Str("name", ""),
		Storage:   root.Str("storage", ""),
		Functions: map[string]*FunctionSpec{},
	}
	if fns, ok := root.Get("functions"); ok && fns.IsMap() {
		for _, name := range fns.Keys {
			f := fns.Map[name]
			app.Functions[name] = &FunctionSpec{
				Name:        name,
				Image:       f.Str("image", ""),
				Accelerated: f.Bool("accelerated", false),
				Domain:      f.Str("domain", ""),
				Timeout:     f.Duration("timeout", 30*time.Second),
				Memory:      units.Bytes(f.Int("memory_mb", 256)) * units.MB,
			}
		}
	}
	if chain, ok := root.Get("chain"); ok {
		app.Chain = chain.List
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

// DeploymentYAML renders the deployment file for a Table 1 benchmark: the
// three-function chain with the DSA hints on f1 and f2.
func DeploymentYAML(b *workload.Benchmark) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "name: %s\n", b.Slug)
	fmt.Fprintf(&sb, "storage: s3://dscs-%s\n", b.Slug)
	sb.WriteString("functions:\n")
	fmt.Fprintf(&sb, "  preprocess:\n")
	fmt.Fprintf(&sb, "    image: dscs/%s-prep:1.0\n", b.Slug)
	fmt.Fprintf(&sb, "    accelerated: true\n")
	fmt.Fprintf(&sb, "    domain: ml\n")
	fmt.Fprintf(&sb, "    timeout: 30s\n")
	fmt.Fprintf(&sb, "    memory_mb: 512\n")
	fmt.Fprintf(&sb, "  inference:\n")
	fmt.Fprintf(&sb, "    image: dscs/%s-model:1.0\n", b.Slug)
	fmt.Fprintf(&sb, "    accelerated: true\n")
	fmt.Fprintf(&sb, "    domain: ml\n")
	fmt.Fprintf(&sb, "    timeout: 60s\n")
	fmt.Fprintf(&sb, "    memory_mb: 2048\n")
	fmt.Fprintf(&sb, "  notify:\n")
	fmt.Fprintf(&sb, "    image: dscs/notify:1.0\n")
	fmt.Fprintf(&sb, "    accelerated: false\n")
	fmt.Fprintf(&sb, "    timeout: 15s\n")
	fmt.Fprintf(&sb, "    memory_mb: 128\n")
	sb.WriteString("chain: [preprocess, inference, notify]\n")
	return sb.String()
}

// AppFor parses the default deployment for a benchmark.
func AppFor(b *workload.Benchmark) (*Application, error) {
	return ParseApplication(DeploymentYAML(b))
}
