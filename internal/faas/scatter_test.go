package faas

import (
	"testing"

	"dscs/internal/platform"
	"dscs/internal/workload"
)

func TestScatterBeatsSingleDriveAtLargeBatch(t *testing.T) {
	store := testStore(t) // 4 SSD + 2 DSCS nodes
	r := NewRunner(store, platform.DSCS())
	b := workload.PPEDetection()
	opt := Options{Quantile: 0.5, Batch: 8}

	single, err := r.Invoke(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	scattered, err := r.InvokeScattered(b, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if scattered.Total() >= single.Total() {
		t.Errorf("scatter across 2 drives (%v) should beat one drive (%v)",
			scattered.Total(), single.Total())
	}
	if scattered.Energy <= 0 || scattered.ComputeEnergy <= 0 {
		t.Error("scatter must account energy")
	}
}

func TestScatterDegradesToInvoke(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.DSCS())
	b := workload.Moderation()
	opt := Options{Quantile: 0.5, Batch: 4}
	direct, err := r.Invoke(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	one, err := r.InvokeScattered(b, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Total() != direct.Total() {
		t.Errorf("parts=1 must equal Invoke: %v vs %v", one.Total(), direct.Total())
	}
}

func TestScatterValidation(t *testing.T) {
	store := testStore(t)
	// Wrong platform.
	cpu := NewRunner(store, platform.BaselineCPU())
	if _, err := cpu.InvokeScattered(workload.Chatbot(), Options{Batch: 4}, 2); err == nil {
		t.Error("scatter on a CPU runner must fail")
	}
	// Batch smaller than partition count.
	dscs := NewRunner(store, platform.DSCS())
	if _, err := dscs.InvokeScattered(workload.Chatbot(), Options{Batch: 1}, 4); err == nil {
		t.Error("batch < parts must fail")
	}
}

func TestScatterPartitionsSerializeOnOneDrive(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.DSCS())
	b := workload.Clinical()
	opt := Options{Quantile: 0.5, Batch: 8}
	// More partitions than drives: extra partitions serialize per drive,
	// so 8 partitions on 2 drives cannot be faster than 2 partitions.
	two, err := r.InvokeScattered(b, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := r.InvokeScattered(b, opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	if eight.Total() < two.Total()/2 {
		t.Errorf("8 partitions (%v) implausibly faster than 2 (%v) on 2 drives",
			eight.Total(), two.Total())
	}
}
