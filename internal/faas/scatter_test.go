package faas

import (
	"strings"
	"testing"

	"dscs/internal/platform"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

func TestScatterBeatsSingleDriveAtLargeBatch(t *testing.T) {
	store := testStore(t) // 4 SSD + 2 DSCS nodes
	r := NewRunner(store, platform.DSCS())
	b := workload.PPEDetection()
	opt := Options{Quantile: 0.5, Batch: 8}

	single, err := r.Invoke(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	scattered, err := r.InvokeScattered(b, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if scattered.Total() >= single.Total() {
		t.Errorf("scatter across 2 drives (%v) should beat one drive (%v)",
			scattered.Total(), single.Total())
	}
	if scattered.Energy <= 0 || scattered.ComputeEnergy <= 0 {
		t.Error("scatter must account energy")
	}
}

func TestScatterDegradesToInvoke(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.DSCS())
	b := workload.Moderation()
	opt := Options{Quantile: 0.5, Batch: 4}
	direct, err := r.Invoke(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	one, err := r.InvokeScattered(b, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Total() != direct.Total() {
		t.Errorf("parts=1 must equal Invoke: %v vs %v", one.Total(), direct.Total())
	}
}

func TestScatterValidation(t *testing.T) {
	store := testStore(t)
	// Wrong platform.
	cpu := NewRunner(store, platform.BaselineCPU())
	if _, err := cpu.InvokeScattered(workload.Chatbot(), Options{Batch: 4}, 2); err == nil {
		t.Error("scatter on a CPU runner must fail")
	}
	// Batch smaller than partition count.
	dscs := NewRunner(store, platform.DSCS())
	if _, err := dscs.InvokeScattered(workload.Chatbot(), Options{Batch: 1}, 4); err == nil {
		t.Error("batch < parts must fail")
	}
}

func TestScatterPartitionsSerializeOnOneDrive(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.DSCS())
	b := workload.Clinical()
	opt := Options{Quantile: 0.5, Batch: 8}
	// More partitions than drives: extra partitions serialize per drive,
	// so 8 partitions on 2 drives cannot be faster than 2 partitions.
	two, err := r.InvokeScattered(b, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := r.InvokeScattered(b, opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	if eight.Total() < two.Total()/2 {
		t.Errorf("8 partitions (%v) implausibly faster than 2 (%v) on 2 drives",
			eight.Total(), two.Total())
	}
}

// TestScatterEmptyFanOut pins the degenerate fan-outs: zero and negative
// partition counts are an empty scatter, which degrades to a plain Invoke
// rather than erroring or partitioning by a nonsense count.
func TestScatterEmptyFanOut(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.DSCS())
	b := workload.Moderation()
	opt := Options{Quantile: 0.5, Batch: 4}
	direct, err := r.Invoke(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{0, -3} {
		res, err := r.InvokeScattered(b, opt, parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if res.Total() != direct.Total() {
			t.Errorf("parts=%d must equal Invoke: %v vs %v", parts, res.Total(), direct.Total())
		}
	}
}

// TestScatterSurvivesSingleDrive seeds the partitions across both DSCS
// drives, kills one, and repairs: ReReplicate re-homes the lost DSCS
// replicas onto the survivor, so the next scatter completes with every
// partition serialized on one drive — degraded parallelism, not an error.
func TestScatterSurvivesSingleDrive(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.DSCS())
	b := workload.Clinical()
	opt := Options{Quantile: 0.5, Batch: 8}
	healthy, err := r.InvokeScattered(b, opt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.FailNode("dscs-1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.ReReplicate("dscs-1"); err != nil {
		t.Fatal(err)
	}
	degraded, err := r.InvokeScattered(b, opt, 2)
	if err != nil {
		t.Fatalf("scatter after repair onto one drive: %v", err)
	}
	if degraded.Total() <= 0 {
		t.Fatalf("degenerate result %+v", degraded)
	}
	if degraded.Total() < healthy.Total() {
		t.Fatalf("serialized scatter (%v) cannot beat the two-drive run (%v)",
			degraded.Total(), healthy.Total())
	}
}

// TestScatterFanInStrandedByFaultScript replays a drive-down fault script
// against the store and then scatters: with every DSCS drive dead a
// partition has no healthy replica to fan in from, so the branch surfaces
// the stranding as an error — never a panic, never a silent accept.
func TestScatterFanInStrandedByFaultScript(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.DSCS())
	faults, err := trace.ParseFaultScript("0s:drive-down:dscs-0;0s:drive-down:dscs-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range faults {
		if !ev.Kind.Down() || ev.Kind.Pool() {
			t.Fatalf("unexpected fault event %v", ev)
		}
		if err := store.FailNode(ev.Target); err != nil {
			t.Fatal(err)
		}
	}
	_, err = r.InvokeScattered(workload.PPEDetection(), Options{Quantile: 0.5, Batch: 8}, 2)
	if err == nil {
		t.Fatal("scatter across dead drives silently succeeded")
	}
	if !strings.Contains(err.Error(), "no healthy DSCS replica") {
		t.Fatalf("error %q does not name the stranded partition", err)
	}
}
