// yaml.go implements the minimal YAML subset the function deployment files
// use (the paper extends OpenFaaS YAML with in-storage acceleration hints):
// nested mappings by two-space indentation, scalar values, flow lists
// ("[a, b]"), block lists ("- item"), and comments. The stdlib has no YAML
// support, and the subset keeps parsing exact and dependency-free.
package faas

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// YAMLValue is one parsed node: exactly one of Scalar, List, or Map is set.
type YAMLValue struct {
	Scalar string
	List   []string
	Map    map[string]*YAMLValue
	// Keys preserves mapping order for deterministic serialization.
	Keys []string
}

// IsMap reports whether the node is a mapping.
func (v *YAMLValue) IsMap() bool { return v.Map != nil }

// Get returns a child of a mapping node.
func (v *YAMLValue) Get(key string) (*YAMLValue, bool) {
	if v.Map == nil {
		return nil, false
	}
	c, ok := v.Map[key]
	return c, ok
}

// Str returns the scalar at key, or def.
func (v *YAMLValue) Str(key, def string) string {
	if c, ok := v.Get(key); ok && c.Map == nil && c.List == nil {
		return c.Scalar
	}
	return def
}

// Bool returns the boolean at key, or def.
func (v *YAMLValue) Bool(key string, def bool) bool {
	s := v.Str(key, "")
	switch strings.ToLower(s) {
	case "true", "yes", "on":
		return true
	case "false", "no", "off":
		return false
	}
	return def
}

// Int returns the integer at key, or def.
func (v *YAMLValue) Int(key string, def int) int {
	if n, err := strconv.Atoi(v.Str(key, "")); err == nil {
		return n
	}
	return def
}

// Duration returns the duration at key, or def.
func (v *YAMLValue) Duration(key string, def time.Duration) time.Duration {
	if d, err := time.ParseDuration(v.Str(key, "")); err == nil {
		return d
	}
	return def
}

type yamlLine struct {
	indent int
	key    string
	value  string
	isItem bool // "- item" list entry
	number int  // 1-based source line
}

// ParseYAML parses the supported subset into a root mapping.
func ParseYAML(src string) (*YAMLValue, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent%2 != 0 {
			return nil, fmt.Errorf("faas: yaml line %d: odd indentation", i+1)
		}
		body := strings.TrimSpace(line)
		if strings.HasPrefix(body, "- ") || body == "-" {
			lines = append(lines, yamlLine{
				indent: indent / 2,
				value:  strings.TrimSpace(strings.TrimPrefix(body, "-")),
				isItem: true,
				number: i + 1,
			})
			continue
		}
		colon := strings.Index(body, ":")
		if colon < 0 {
			return nil, fmt.Errorf("faas: yaml line %d: missing ':'", i+1)
		}
		lines = append(lines, yamlLine{
			indent: indent / 2,
			key:    strings.TrimSpace(body[:colon]),
			value:  strings.TrimSpace(body[colon+1:]),
			number: i + 1,
		})
	}
	root := &YAMLValue{Map: map[string]*YAMLValue{}}
	pos := 0
	if err := parseMapping(lines, &pos, 0, root); err != nil {
		return nil, err
	}
	if pos != len(lines) {
		return nil, fmt.Errorf("faas: yaml line %d: unexpected indentation", lines[pos].number)
	}
	return root, nil
}

func parseMapping(lines []yamlLine, pos *int, indent int, into *YAMLValue) error {
	for *pos < len(lines) {
		ln := lines[*pos]
		if ln.indent < indent {
			return nil
		}
		if ln.indent > indent {
			return fmt.Errorf("faas: yaml line %d: unexpected indent", ln.number)
		}
		if ln.isItem {
			return fmt.Errorf("faas: yaml line %d: list item outside a list", ln.number)
		}
		if _, dup := into.Map[ln.key]; dup {
			return fmt.Errorf("faas: yaml line %d: duplicate key %q", ln.number, ln.key)
		}
		*pos++
		child := &YAMLValue{}
		switch {
		case ln.value != "":
			if err := parseInline(ln.value, child); err != nil {
				return fmt.Errorf("faas: yaml line %d: %v", ln.number, err)
			}
		case *pos < len(lines) && lines[*pos].indent == indent+1 && lines[*pos].isItem:
			for *pos < len(lines) && lines[*pos].indent == indent+1 && lines[*pos].isItem {
				child.List = append(child.List, unquote(lines[*pos].value))
				*pos++
			}
		case *pos < len(lines) && lines[*pos].indent > indent:
			child.Map = map[string]*YAMLValue{}
			if err := parseMapping(lines, pos, indent+1, child); err != nil {
				return err
			}
		default:
			// Empty value: treated as empty scalar.
		}
		into.Map[ln.key] = child
		into.Keys = append(into.Keys, ln.key)
	}
	return nil
}

func parseInline(s string, into *YAMLValue) error {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return fmt.Errorf("unterminated flow list %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			into.List = []string{}
			return nil
		}
		for _, part := range strings.Split(inner, ",") {
			into.List = append(into.List, unquote(strings.TrimSpace(part)))
		}
		return nil
	}
	into.Scalar = unquote(s)
	return nil
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

// writeYAML serializes a mapping back out (deterministic key order).
func writeYAML(sb *strings.Builder, v *YAMLValue, indent int) {
	pad := strings.Repeat("  ", indent)
	for _, k := range v.Keys {
		c := v.Map[k]
		switch {
		case c.IsMap():
			fmt.Fprintf(sb, "%s%s:\n", pad, k)
			writeYAML(sb, c, indent+1)
		case c.List != nil:
			fmt.Fprintf(sb, "%s%s: [%s]\n", pad, k, strings.Join(c.List, ", "))
		default:
			fmt.Fprintf(sb, "%s%s: %s\n", pad, k, c.Scalar)
		}
	}
}

// MarshalYAML renders a parsed tree back to text.
func MarshalYAML(v *YAMLValue) string {
	var sb strings.Builder
	writeYAML(&sb, v, 0)
	return sb.String()
}
