// scatter.go implements the paper's multi-CSD execution option
// (Section 5.2): when a request's data is partitioned across several
// DSCS-Drives — or deliberately scattered for parallelism — the scheduler
// launches the accelerated chain on every drive holding a partition and
// gathers the results. Partitions that hash to the same drive serialize on
// it (run-to-completion, one DSA per drive).
package faas

import (
	"fmt"
	"time"

	"dscs/internal/objstore"
	"dscs/internal/platform"
	"dscs/internal/units"
	"dscs/internal/workload"
)

// InvokeScattered executes one invocation with its batch partitioned across
// up to parts DSCS-Drives. It requires the DSCS platform; parts <= 1
// degrades to Invoke.
func (r *Runner) InvokeScattered(b *workload.Benchmark, opt Options, parts int) (Result, error) {
	if r.Platform.Class() != platform.InStorageDSA {
		return Result{}, fmt.Errorf("faas: scatter requires the DSCS platform, have %s", r.Platform.Name())
	}
	if parts <= 1 {
		return r.Invoke(b, opt)
	}
	batch := opt.batch()
	if batch < parts {
		return Result{}, fmt.Errorf("faas: cannot scatter batch %d across %d partitions", batch, parts)
	}

	var res Result
	q := opt.Quantile

	// Partition the request: each partition is its own object, placed by
	// the store's DSCS-aware rule (arrival is out of band, not charged).
	partBatch := (batch + parts - 1) / parts
	partIn := b.InputBytes * units.Bytes(partBatch)
	partOut := b.OutputBytes * units.Bytes(partBatch)
	type partition struct {
		node   *objstore.Node
		offset int64
	}
	perNode := make(map[*objstore.Node][]partition)
	for i := 0; i < parts; i++ {
		key := fmt.Sprintf("%s/input.part%d", b.Slug, i)
		if r.put[key] != partIn {
			if _, _, err := r.Store.PutAt(key, partIn, true, 0.5); err != nil {
				return res, err
			}
			r.put[key] = partIn
		}
		node, offset, ok := r.Store.DSCSReplicaHealthy(key)
		if !ok || node.CSD == nil {
			return Result{}, fmt.Errorf("faas: partition %d has no healthy DSCS replica", i)
		}
		perNode[node] = append(perNode[node], partition{node: node, offset: offset})
	}

	// Framework overhead: the chain is scheduled once, plus a per-partition
	// coordination cost at the scheduler.
	app, err := AppFor(b)
	if err != nil {
		return res, err
	}
	for range app.AcceleratedPrefix() {
		r.stackCost(&res, true)
	}
	coord := time.Duration(parts) * time.Millisecond
	res.Breakdown.Stack += coord
	res.Energy += r.Energy.StorageNodeShare.Times(coord)

	// Per-partition on-DSA computation.
	var partCompute time.Duration
	var partComputeEnergy units.Energy
	for _, g := range chainGraphs(b, opt.ExtraAccelFuncs) {
		lat, energy, err := r.Platform.Infer(g, partBatch)
		if err != nil {
			return res, err
		}
		partCompute += lat
		partComputeEnergy += energy
	}

	// Each drive serializes its partitions; drives run in parallel, so the
	// device phase is the slowest drive's sum.
	var slowest time.Duration
	for node, partsOnNode := range perNode {
		var nodeTotal time.Duration
		for _, p := range partsOnNode {
			exec := node.CSD.RunStaged(partCompute, partComputeEnergy, p.offset, partIn, partOut)
			nodeTotal += exec.Total()
			res.Energy += exec.Energy
			res.ComputeEnergy += partComputeEnergy
			res.Breakdown.Driver += exec.Driver
		}
		if nodeTotal > slowest {
			slowest = nodeTotal
		}
	}
	// Attribute the parallel phase: compute vs staging split proportional
	// to one partition's profile.
	res.Breakdown.Compute += slowest - res.Breakdown.Driver
	if res.Breakdown.Compute < 0 {
		res.Breakdown.Compute = 0
	}

	// Gather: publish the combined output, then f3 as usual.
	outKey := b.Slug + "/output"
	totalOut := b.OutputBytes * units.Bytes(batch)
	if _, _, err := r.Store.PutAt(outKey, totalOut, true, 0.5); err != nil {
		return res, err
	}
	r.stackCost(&res, false)
	if err := r.remoteRead(&res, outKey, q); err != nil {
		return res, err
	}
	r.notify(&res, b, q)
	return res, nil
}
