// runner.go is the invocation engine: it executes a Table 1 application on
// a chosen platform and returns the end-to-end latency breakdown and system
// energy — the machinery behind Figures 4, 9, 10, 11, 14, 15, 16, and 17.
//
// Three execution paths exist, mirroring the paper:
//
//   - Traditional (CPU, GPU, FPGA with remote storage): every function runs
//     on a compute node and moves data through the object store.
//   - Conventional near-storage (NS-ARM, NS-Mobile-GPU, NS-FPGA): f1/f2 run
//     inside the storage node with device-internal reads.
//   - DSCS-Serverless: f1/f2 run on the DSCS-Drive's DSA via the driver's
//     P2P path; chained accelerated functions keep intermediates on-drive.
//
// Function 3 (notification) always runs on a compute node (Section 6.1).
package faas

import (
	"fmt"
	"sync"
	"time"

	"dscs/internal/csd"
	"dscs/internal/model"
	"dscs/internal/network"
	"dscs/internal/objstore"
	"dscs/internal/platform"
	"dscs/internal/tensor"
	"dscs/internal/units"
	"dscs/internal/workload"
)

// StackModel is the serverless system-software overhead per function
// invocation: the OpenFaaS gateway, the Kubernetes scheduler, and the
// container runtime dispatch.
type StackModel struct {
	Scheduler time.Duration
	Gateway   time.Duration
	Runtime   time.Duration
}

// DefaultStackModel returns the calibrated per-function overhead.
func DefaultStackModel() StackModel {
	return StackModel{
		Scheduler: 3 * time.Millisecond,
		Gateway:   4 * time.Millisecond,
		Runtime:   5 * time.Millisecond,
	}
}

// PerFunction is the total stack cost of one invocation.
func (s StackModel) PerFunction() time.Duration {
	return s.Scheduler + s.Gateway + s.Runtime
}

// EnergyModel prices the host-side phases.
type EnergyModel struct {
	// HostActive is the compute node's draw while running function code.
	HostActive units.Power
	// HostWait is the compute node's draw while blocked on storage I/O.
	HostWait units.Power
	// StorageNodeShare is the storage-node CPU share during driver and
	// near-storage activity.
	StorageNodeShare units.Power
}

// DefaultEnergyModel returns the c5.4xlarge-slice figures.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{HostActive: 71, HostWait: 40, StorageNodeShare: 26}
}

// Breakdown is the per-invocation latency decomposition (Figure 10's
// categories).
type Breakdown struct {
	Stack       time.Duration // framework scheduling/gateway/runtime
	RemoteRead  time.Duration // object-store reads over the network
	RemoteWrite time.Duration // object-store writes over the network
	Compute     time.Duration // function computation
	DeviceIO    time.Duration // device copies: PCIe to GPU/FPGA, P2P, local reads
	Driver      time.Duration // in-storage driver syscalls/enqueue/interrupt
	ColdStart   time.Duration // container pull + weight staging
	Notify      time.Duration // f3 egress
}

// Total is the end-to-end invocation latency.
func (b Breakdown) Total() time.Duration {
	return b.Stack + b.RemoteRead + b.RemoteWrite + b.Compute +
		b.DeviceIO + b.Driver + b.ColdStart + b.Notify
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Stack += o.Stack
	b.RemoteRead += o.RemoteRead
	b.RemoteWrite += o.RemoteWrite
	b.Compute += o.Compute
	b.DeviceIO += o.DeviceIO
	b.Driver += o.Driver
	b.ColdStart += o.ColdStart
	b.Notify += o.Notify
}

// Result is one invocation's outcome.
type Result struct {
	Breakdown     Breakdown
	Energy        units.Energy // end-to-end system energy
	ComputeEnergy units.Energy // device energy of f1/f2 computation only
}

// Total is the end-to-end latency.
func (r Result) Total() time.Duration { return r.Breakdown.Total() }

// Options tune one invocation.
type Options struct {
	// Batch is the request batch size (Figure 14); 0 means 1.
	Batch int
	// Cold forces a cold container start (Figure 17).
	Cold bool
	// ExtraAccelFuncs appends duplicates of f2 to the chain (Figure 16).
	ExtraAccelFuncs int
	// Quantile, when positive, evaluates every network component at that
	// percentile (Figure 15); zero or negative samples stochastically.
	Quantile float64
}

func (o Options) batch() int {
	if o.Batch < 1 {
		return 1
	}
	return o.Batch
}

// Runner executes applications for one platform over one storage setup.
//
// Invoke is safe for concurrent use: the runner's only mutable state is the
// deployed-input ledger behind its own lock; the object store and drives
// serialize themselves and sample network jitter from per-operation RNG
// streams split off the seed generator (sim.RNG.Split), so concurrent
// invocations never share a generator; and DSA compilation results are
// memoized with singleflight semantics in the platform layer. Do not mutate
// the exported model fields (Stack, Energy, Cold, Egress) while invocations
// are in flight.
type Runner struct {
	Store    *objstore.Store
	Platform platform.Compute
	Stack    StackModel
	Energy   EnergyModel
	Cold     ColdStartModel
	Egress   network.Fabric

	// putMu guards put, the only runner-local mutable state.
	putMu sync.Mutex
	// put tracks deployed input objects: key -> size, to avoid re-puts.
	put map[string]units.Bytes
}

// NewRunner assembles a runner with default stack/energy/cold models.
func NewRunner(store *objstore.Store, p platform.Compute) *Runner {
	return &Runner{
		Store:    store,
		Platform: p,
		Stack:    DefaultStackModel(),
		Energy:   DefaultEnergyModel(),
		Cold:     DefaultColdStart(),
		Egress:   network.Egress(),
		put:      make(map[string]units.Bytes),
	}
}

// weightDType is the platform's weight precision.
func (r *Runner) weightDType() tensor.DType {
	if _, isDSA := r.Platform.(*platform.DSAPlatform); isDSA {
		return tensor.Int8
	}
	return tensor.Float32
}

// stageKey names a per-stage object. Sizes scale with the request batch,
// so batched invocations get their own keys: concurrent invocations of one
// benchmark at different batch sizes must not re-place each other's
// objects mid-flight (a same-size re-put overwrites in place, which is
// race-benign; a different-size one would re-place the object under a
// concurrent reader). Batch 1 keeps the bare key.
func stageKey(slug, stage string, batch int) string {
	if batch <= 1 {
		return slug + "/" + stage
	}
	return fmt.Sprintf("%s/%s@b%d", slug, stage, batch)
}

// ensureInput places the request payload in the object store (request
// arrival precedes invocation and is not part of end-to-end latency).
// Concurrent misses on the same key race benignly: PutAt overwrites in
// place for an existing key of the same size.
func (r *Runner) ensureInput(b *workload.Benchmark, size units.Bytes, batch int) (string, error) {
	key := stageKey(b.Slug, "input", batch)
	r.putMu.Lock()
	have := r.put[key] == size
	r.putMu.Unlock()
	if have {
		return key, nil
	}
	if _, _, err := r.Store.PutAt(key, size, true, 0.5); err != nil {
		return "", err
	}
	r.putMu.Lock()
	r.put[key] = size
	r.putMu.Unlock()
	return key, nil
}

// Invoke runs one end-to-end application invocation.
func (r *Runner) Invoke(b *workload.Benchmark, opt Options) (Result, error) {
	app, err := AppFor(b)
	if err != nil {
		return Result{}, err
	}
	batch := opt.batch()
	inBytes := b.InputBytes * units.Bytes(batch)
	inputKey, err := r.ensureInput(b, inBytes, batch)
	if err != nil {
		return Result{}, err
	}

	switch r.Platform.Class() {
	case platform.InStorageDSA:
		return r.invokeDSCS(b, app, opt, inputKey)
	case platform.NearStorage:
		return r.invokeNearStorage(b, opt, inputKey)
	default:
		return r.invokeTraditional(b, opt, inputKey)
	}
}

// stackCost charges one function's framework overhead.
func (r *Runner) stackCost(res *Result, nearStorage bool) {
	d := r.Stack.PerFunction()
	res.Breakdown.Stack += d
	p := r.Energy.HostActive
	if nearStorage {
		p = r.Energy.StorageNodeShare
	}
	res.Energy += p.Times(d)
}

// remoteRead charges an object-store read from a compute node.
func (r *Runner) remoteRead(res *Result, key string, q float64) error {
	lat, devEnergy, err := r.Store.GetAt(key, q)
	if err != nil {
		return err
	}
	res.Breakdown.RemoteRead += lat
	res.Energy += devEnergy + r.Energy.HostWait.Times(lat)
	return nil
}

// remoteWrite charges an object-store write from a compute node.
func (r *Runner) remoteWrite(res *Result, key string, size units.Bytes, q float64) error {
	lat, devEnergy, err := r.Store.PutAt(key, size, true, q)
	if err != nil {
		return err
	}
	res.Breakdown.RemoteWrite += lat
	res.Energy += devEnergy + r.Energy.HostWait.Times(lat)
	return nil
}

// compute charges a function's computation on the platform.
func (r *Runner) compute(res *Result, g *model.Graph, batch int) error {
	lat, energy, err := r.Platform.Infer(g, batch)
	if err != nil {
		return err
	}
	res.Breakdown.Compute += lat
	res.Energy += energy
	res.ComputeEnergy += energy
	switch r.Platform.Class() {
	case platform.NearStorage:
		// Conventional near-storage compute saturates the storage node:
		// its CPU share is charged for the whole occupancy (the paper's
		// NS platforms lose their power advantage here).
		res.Energy += r.Energy.StorageNodeShare.Times(lat)
	case platform.Traditional:
		// Host share while driving a discrete accelerator.
		if _, hasCopy := r.Platform.DeviceCopy(); hasCopy {
			res.Energy += r.Energy.HostWait.Times(lat)
		}
	}
	return nil
}

// deviceCopy charges host<->device transfers for discrete accelerators.
func (r *Runner) deviceCopy(res *Result, bytes units.Bytes) {
	link, ok := r.Platform.DeviceCopy()
	if !ok || bytes <= 0 {
		return
	}
	lat := link.TransferTime(bytes)
	res.Breakdown.DeviceIO += lat
	res.Energy += link.TransferEnergy(bytes) + r.Energy.HostWait.Times(lat)
}

// coldStart charges container cold paths when requested: the preprocessing
// function pulls a slim image; the inference function's image carries the
// model weights at the platform's precision. DSA containers are much
// slimmer: compiled executables plus the thin driver instead of a full
// Python inference runtime.
func (r *Runner) coldStart(res *Result, b *workload.Benchmark, onDrive *csd.Drive) {
	prepBase, modelBase := units.Bytes(110*units.MB), units.Bytes(130*units.MB)
	if r.weightDType() == tensor.Int8 {
		prepBase, modelBase = 22*units.MB, 30*units.MB
	}
	prepImg := Image{Name: b.Slug + "-prep", Base: prepBase}
	modelImg := ImageFor(b.Slug+"-model", b.Model, r.weightDType(), modelBase)
	cold := r.Cold.Pull(prepImg) + r.Cold.Pull(modelImg)
	if onDrive != nil {
		// DSCS stages the weights into the DSA's DRAM over P2P.
		lat, energy := onDrive.LoadWeights(b.Slug, modelImg.Weights, weightRegionOffset)
		cold += lat
		res.Energy += energy
	} else {
		cold += r.Cold.StageWeights(modelImg)
	}
	res.Breakdown.ColdStart += cold
	res.Energy += r.Energy.HostWait.Times(cold)
}

// notify charges Function 3: a small formatting computation on a compute
// node and the egress push to the notification endpoint.
func (r *Runner) notify(res *Result, b *workload.Benchmark, q float64) {
	const format = time.Millisecond
	res.Breakdown.Compute += format
	res.Energy += r.Energy.HostActive.Times(format)
	if q <= 0 {
		q = 0.5 // egress uses the median unless a tail sweep asks otherwise
	}
	lat := r.Egress.QuantileLatency(b.NotifyBytes, q)
	res.Breakdown.Notify += lat
	res.Energy += r.Energy.HostWait.Times(lat)
}

// invokeTraditional is the remote-storage path (CPU, GPU, FPGA).
func (r *Runner) invokeTraditional(b *workload.Benchmark, opt Options, inputKey string) (Result, error) {
	var res Result
	batch := opt.batch()
	q := opt.Quantile
	interKey := stageKey(b.Slug, "intermediate", batch)
	outKey := stageKey(b.Slug, "output", batch)
	interBytes := b.IntermediateBytes * units.Bytes(batch)
	outBytes := b.OutputBytes * units.Bytes(batch)

	if opt.Cold {
		r.coldStart(&res, b, nil)
	}

	// f1: preprocess.
	r.stackCost(&res, false)
	if err := r.remoteRead(&res, inputKey, q); err != nil {
		return res, err
	}
	r.deviceCopy(&res, b.InputBytes*units.Bytes(batch))
	if err := r.compute(&res, b.Preproc, batch); err != nil {
		return res, err
	}
	r.deviceCopy(&res, interBytes)
	if err := r.remoteWrite(&res, interKey, interBytes, q); err != nil {
		return res, err
	}

	// f2: inference (+ the Figure 16 duplicates).
	for i := 0; i <= opt.ExtraAccelFuncs; i++ {
		r.stackCost(&res, false)
		if err := r.remoteRead(&res, interKey, q); err != nil {
			return res, err
		}
		r.deviceCopy(&res, interBytes)
		if err := r.compute(&res, b.Model, batch); err != nil {
			return res, err
		}
		r.deviceCopy(&res, outBytes)
		key := outKey
		if i < opt.ExtraAccelFuncs {
			key = interKey // chained duplicate feeds the next stage
			if err := r.remoteWrite(&res, key, interBytes, q); err != nil {
				return res, err
			}
			continue
		}
		if err := r.remoteWrite(&res, key, outBytes, q); err != nil {
			return res, err
		}
	}

	// f3: notification.
	r.stackCost(&res, false)
	if err := r.remoteRead(&res, outKey, q); err != nil {
		return res, err
	}
	r.notify(&res, b, q)
	return res, nil
}

// localIO charges a storage-node-internal device read or write for the
// near-storage platforms.
func (r *Runner) localIO(res *Result, node *objstore.Node, offset int64, bytes units.Bytes, write bool) {
	var lat time.Duration
	var energy units.Energy
	if write {
		lat, energy = node.Drive().InternalWrite(offset, bytes)
	} else {
		lat, energy = node.Drive().InternalRead(offset, bytes)
	}
	res.Breakdown.DeviceIO += lat
	res.Energy += energy + r.Energy.StorageNodeShare.Times(lat)
}

// invokeNearStorage is the conventional in-storage path (NS-ARM,
// NS-Mobile-GPU, NS-FPGA): f1/f2 run on the storage node holding the data.
func (r *Runner) invokeNearStorage(b *workload.Benchmark, opt Options, inputKey string) (Result, error) {
	var res Result
	batch := opt.batch()
	q := opt.Quantile
	interBytes := b.IntermediateBytes * units.Bytes(batch)
	outBytes := b.OutputBytes * units.Bytes(batch)
	outKey := stageKey(b.Slug, "output", batch)

	node, offset, ok := r.Store.DSCSReplicaHealthy(inputKey)
	if !ok {
		// Chunked across drives, no capable node, or the drive is down:
		// fall back to conventional execution (5.2).
		return r.invokeTraditional(b, opt, inputKey)
	}

	if opt.Cold {
		r.coldStart(&res, b, nil)
	}

	// f1 on the storage node.
	r.stackCost(&res, true)
	r.localIO(&res, node, offset, b.InputBytes*units.Bytes(batch), false)
	r.deviceCopy(&res, b.InputBytes*units.Bytes(batch))
	if err := r.compute(&res, b.Preproc, batch); err != nil {
		return res, err
	}
	r.deviceCopy(&res, interBytes)
	r.localIO(&res, node, scratchRegionOffset, interBytes, true)

	// f2 (+ duplicates) on the storage node.
	for i := 0; i <= opt.ExtraAccelFuncs; i++ {
		r.stackCost(&res, true)
		r.localIO(&res, node, scratchRegionOffset, interBytes, false)
		r.deviceCopy(&res, interBytes)
		if err := r.compute(&res, b.Model, batch); err != nil {
			return res, err
		}
		r.deviceCopy(&res, outBytes)
		if i < opt.ExtraAccelFuncs {
			r.localIO(&res, node, scratchRegionOffset, interBytes, true)
			continue
		}
		r.localIO(&res, node, scratchRegionOffset, outBytes, true)
	}
	if _, _, err := r.Store.PutAt(outKey, outBytes, true, 0.5); err != nil {
		return res, err
	}

	// f3 from a compute node, as always.
	r.stackCost(&res, false)
	if err := r.remoteRead(&res, outKey, q); err != nil {
		return res, err
	}
	r.notify(&res, b, q)
	return res, nil
}

// Drive-local scratch regions (logical byte offsets) used for intermediates
// and weight staging.
const (
	scratchRegionOffset = int64(1) << 42
	weightRegionOffset  = int64(1) << 43
)

// invokeDSCS is the paper's path: f1/f2 execute on the DSCS-Drive's DSA,
// chained intermediates never leave the device (Section 5.3), and only f3
// touches the network.
func (r *Runner) invokeDSCS(b *workload.Benchmark, app *Application, opt Options, inputKey string) (Result, error) {
	var res Result
	batch := opt.batch()
	q := opt.Quantile
	outKey := stageKey(b.Slug, "output", batch)
	inBytes := b.InputBytes * units.Bytes(batch)
	outBytes := b.OutputBytes * units.Bytes(batch)

	node, offset, ok := r.Store.DSCSReplicaHealthy(inputKey)
	if !ok || node.CSD == nil {
		return r.invokeTraditional(b, opt, inputKey)
	}
	drive := node.CSD

	if opt.Cold {
		r.coldStart(&res, b, drive)
	}

	// Framework overhead: every chained function is still scheduled and
	// routed by the serverless stack, on the storage node.
	accelFuncs := len(app.AcceleratedPrefix()) + opt.ExtraAccelFuncs
	for i := 0; i < accelFuncs; i++ {
		r.stackCost(&res, true)
	}

	// Evaluate the on-DSA computation: f1 (VPU preprocessing), f2, and any
	// duplicated accelerated functions; intermediates stay in DSA DRAM.
	var compute time.Duration
	var computeEnergy units.Energy
	for _, g := range chainGraphs(b, opt.ExtraAccelFuncs) {
		lat, energy, err := r.Platform.Infer(g, batch)
		if err != nil {
			return res, err
		}
		compute += lat
		computeEnergy += energy
	}
	res.ComputeEnergy += computeEnergy

	// The drive-side path: driver, P2P staging, compute, P2P write-back.
	exec := drive.RunStaged(compute, computeEnergy, offset, inBytes, outBytes)
	res.Breakdown.Driver += exec.Driver
	res.Breakdown.DeviceIO += exec.P2PRead + exec.P2PWrite
	res.Breakdown.Compute += exec.Compute
	res.Energy += exec.Energy
	res.Energy += r.Energy.StorageNodeShare.Times(exec.Driver)

	// Publish the output for f3 (metadata only; bytes are already on the
	// drive via the P2P write-back).
	if _, _, err := r.Store.PutAt(outKey, outBytes, true, 0.5); err != nil {
		return res, err
	}

	// f3 from a compute node.
	r.stackCost(&res, false)
	if err := r.remoteRead(&res, outKey, q); err != nil {
		return res, err
	}
	r.notify(&res, b, q)
	return res, nil
}

// chainGraphs returns the accelerated computation chain: preprocessing,
// inference, and the Figure 16 duplicates of f2.
func chainGraphs(b *workload.Benchmark, extras int) []*model.Graph {
	graphs := []*model.Graph{b.Preproc, b.Model}
	for i := 0; i < extras; i++ {
		graphs = append(graphs, b.Model)
	}
	return graphs
}

// DriveFor reports the DSCS-Drive an invocation of b at the given batch
// size would execute on, placing the input object first if needed exactly
// as Invoke would (placement is keyed by slug and batch). ok is false when
// the platform is not in-storage or no healthy DSCS replica holds the
// input — Invoke then falls back to conventional execution and occupies no
// drive. The serving engine uses this to acquire the right physical drive
// for the run-to-completion window.
func (r *Runner) DriveFor(b *workload.Benchmark, batch int) (*csd.Drive, bool) {
	if r.Platform.Class() != platform.InStorageDSA {
		return nil, false
	}
	if batch < 1 {
		batch = 1
	}
	inputKey, err := r.ensureInput(b, b.InputBytes*units.Bytes(batch), batch)
	if err != nil {
		return nil, false
	}
	node, _, ok := r.Store.DSCSReplicaHealthy(inputKey)
	if !ok || node.CSD == nil {
		return nil, false
	}
	return node.CSD, true
}

// Describe summarizes a runner for diagnostics.
func (r *Runner) Describe() string {
	return fmt.Sprintf("runner(platform=%s, stack=%v)", r.Platform.Name(), r.Stack.PerFunction())
}
