package faas

import (
	"strings"
	"testing"
	"time"

	"dscs/internal/units"
	"dscs/internal/workload"
)

func TestParseYAMLBasics(t *testing.T) {
	src := `
# deployment file
name: demo
storage: s3://bucket
functions:
  preprocess:
    image: dscs/prep:1.0
    accelerated: true
    domain: ml
    timeout: 30s
    memory_mb: 512
  notify:
    image: dscs/notify:1.0
    accelerated: false
    timeout: 15s
chain: [preprocess, notify]
`
	root, err := ParseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	if root.Str("name", "") != "demo" {
		t.Errorf("name = %q", root.Str("name", ""))
	}
	fns, ok := root.Get("functions")
	if !ok || !fns.IsMap() || len(fns.Keys) != 2 {
		t.Fatalf("functions mapping broken: %+v", fns)
	}
	prep := fns.Map["preprocess"]
	if !prep.Bool("accelerated", false) {
		t.Error("accelerated flag lost")
	}
	if prep.Int("memory_mb", 0) != 512 {
		t.Error("memory lost")
	}
	if prep.Duration("timeout", 0) != 30*time.Second {
		t.Error("timeout lost")
	}
	chain, _ := root.Get("chain")
	if len(chain.List) != 2 || chain.List[0] != "preprocess" {
		t.Errorf("chain = %v", chain.List)
	}
}

func TestParseYAMLBlockLists(t *testing.T) {
	src := "steps:\n  - one\n  - two\n  - three\n"
	root, err := ParseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	steps, _ := root.Get("steps")
	if len(steps.List) != 3 || steps.List[2] != "three" {
		t.Errorf("block list = %v", steps.List)
	}
}

func TestParseYAMLQuotes(t *testing.T) {
	root, err := ParseYAML(`name: "hello world"
tag: 'v1'`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Str("name", "") != "hello world" || root.Str("tag", "") != "v1" {
		t.Error("quote stripping broken")
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []string{
		"key without colon",
		" name: odd-indent",
		"a: 1\na: 2",
		"list:\n  - item\nb:\n    - floating deeper", // item at wrong depth
		"flow: [unterminated",
	}
	for i, src := range cases {
		if _, err := ParseYAML(src); err == nil {
			t.Errorf("case %d should fail: %q", i, src)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	src := "name: x\nnested:\n  a: 1\n  b: [p, q]\n"
	root, err := ParseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	out := MarshalYAML(root)
	root2, err := ParseYAML(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if root2.Str("name", "") != "x" {
		t.Error("round trip lost data")
	}
	nested, _ := root2.Get("nested")
	if nested.Str("a", "") != "1" {
		t.Error("round trip lost nested scalar")
	}
}

func TestDeploymentYAMLForSuite(t *testing.T) {
	for _, b := range workload.Suite() {
		app, err := AppFor(b)
		if err != nil {
			t.Fatalf("%s: %v", b.Slug, err)
		}
		if len(app.Chain) != 3 {
			t.Errorf("%s: chain length %d, want 3", b.Slug, len(app.Chain))
		}
		accel := app.AcceleratedPrefix()
		if len(accel) != 2 {
			t.Errorf("%s: accelerated prefix %v, want [preprocess inference]", b.Slug, accel)
		}
		if app.Functions["notify"].Accelerated {
			t.Errorf("%s: notify must not be accelerated", b.Slug)
		}
		if !strings.Contains(DeploymentYAML(b), "accelerated: true") {
			t.Errorf("%s: YAML missing the acceleration hint", b.Slug)
		}
	}
}

func TestApplicationValidation(t *testing.T) {
	app := &Application{Name: "x", Chain: []string{"missing"}, Functions: map[string]*FunctionSpec{}}
	if err := app.Validate(); err == nil {
		t.Error("chaining an unknown function must fail")
	}
	bad := FunctionSpec{Name: "f", Image: "", Timeout: time.Second}
	if err := bad.Validate(); err == nil {
		t.Error("missing image must fail")
	}
	noDomain := FunctionSpec{Name: "f", Image: "i", Timeout: time.Second, Accelerated: true}
	if err := noDomain.Validate(); err == nil {
		t.Error("accelerated function without domain must fail")
	}
}

func TestColdStartModel(t *testing.T) {
	m := DefaultColdStart()
	slim := Image{Name: "slim", Base: 20 * units.MB}
	fat := Image{Name: "fat", Base: 120 * units.MB, Weights: 400 * units.MB}
	if m.Pull(fat) <= m.Pull(slim) {
		t.Error("bigger images must pull slower")
	}
	if m.Cold(fat) <= m.Pull(fat) {
		t.Error("cold must include weight staging")
	}
	if fat.Size() != 520*units.MB {
		t.Errorf("image size = %v", fat.Size())
	}
}

func TestKeepWarmPolicy(t *testing.T) {
	w := NewWarmState(KeepWarmPolicy{TTL: time.Minute})
	if w.Warm("f", 0) {
		t.Error("first use is cold")
	}
	if !w.Warm("f", 30*time.Second) {
		t.Error("within TTL should be warm")
	}
	if w.Warm("f", 30*time.Second+2*time.Minute) {
		t.Error("past TTL should be cold again")
	}
	w.Warm("g", 0)
	w.Evict("g")
	if w.Warm("g", time.Millisecond) {
		t.Error("evicted function must be cold")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{Stack: 1, RemoteRead: 2, Compute: 3, Notify: 4}
	b := Breakdown{Stack: 10, RemoteWrite: 20, DeviceIO: 5, Driver: 6, ColdStart: 7}
	a.Add(b)
	if a.Total() != 58 {
		t.Errorf("total = %d, want 58", a.Total())
	}
}

func TestStackModel(t *testing.T) {
	s := DefaultStackModel()
	if s.PerFunction() != s.Scheduler+s.Gateway+s.Runtime {
		t.Error("PerFunction must sum the parts")
	}
	if s.PerFunction() < 5*time.Millisecond || s.PerFunction() > 30*time.Millisecond {
		t.Errorf("stack overhead %v outside plausible band", s.PerFunction())
	}
}
