package faas

import (
	"fmt"
	"testing"
	"time"

	"dscs/internal/csd"
	"dscs/internal/objstore"
	"dscs/internal/platform"
	"dscs/internal/sim"
	"dscs/internal/ssd"
	"dscs/internal/workload"
)

func testStore(t *testing.T) *objstore.Store {
	t.Helper()
	var nodes []*objstore.Node
	for i := 0; i < 4; i++ {
		d, err := ssd.New(ssd.SmartSSDClass())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("ssd-%d", i), Kind: objstore.PlainSSD, SSD: d,
		})
	}
	for i := 0; i < 2; i++ {
		d, err := csd.New(csd.Default())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("dscs-%d", i), Kind: objstore.DSCSDrive, CSD: d,
		})
	}
	s, err := objstore.New(objstore.Default(), nodes, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInvokePathsAllPlatforms(t *testing.T) {
	store := testStore(t)
	b := workload.AssetDamage()
	opt := Options{Quantile: 0.5}
	var baseline time.Duration
	for _, p := range platform.All() {
		r := NewRunner(store, p)
		res, err := r.Invoke(b, opt)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Total() <= 0 || res.Energy <= 0 {
			t.Fatalf("%s: degenerate result %+v", p.Name(), res)
		}
		switch p.Class() {
		case platform.Traditional:
			if res.Breakdown.RemoteRead <= 0 || res.Breakdown.RemoteWrite <= 0 {
				t.Errorf("%s: traditional path must pay remote IO", p.Name())
			}
			if res.Breakdown.Driver != 0 {
				t.Errorf("%s: traditional path has no in-storage driver", p.Name())
			}
		case platform.NearStorage:
			if res.Breakdown.RemoteWrite > 0 {
				t.Errorf("%s: near-storage f1/f2 must not write remotely", p.Name())
			}
			if res.Breakdown.DeviceIO <= 0 {
				t.Errorf("%s: near-storage path must pay local device IO", p.Name())
			}
		case platform.InStorageDSA:
			if res.Breakdown.Driver <= 0 {
				t.Errorf("%s: DSCS path must pay the driver", p.Name())
			}
			if res.Breakdown.DeviceIO <= 0 {
				t.Errorf("%s: DSCS path must pay P2P staging", p.Name())
			}
			// Only f3 reads remotely.
			if res.Breakdown.RemoteRead >= baseline/2 {
				t.Errorf("%s: remote reads should collapse to f3's", p.Name())
			}
		}
		if p.Class() == platform.Traditional && p.Name() == "Baseline (CPU)" {
			baseline = res.Breakdown.RemoteRead
		}
	}
}

func TestInvokeDeterministicAtQuantile(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.BaselineCPU())
	b := workload.Chatbot()
	a, err := r.Invoke(b, Options{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	bRes, err := r.Invoke(b, Options{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != bRes.Total() {
		t.Errorf("quantile mode must be deterministic: %v vs %v", a.Total(), bRes.Total())
	}
}

func TestInvokeSampledVariance(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.BaselineCPU())
	b := workload.Moderation()
	seen := map[time.Duration]bool{}
	for i := 0; i < 10; i++ {
		res, err := r.Invoke(b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Total()] = true
	}
	if len(seen) < 5 {
		t.Errorf("sampled invocations should vary, got %d distinct latencies", len(seen))
	}
}

func TestColdStartAddsLatency(t *testing.T) {
	store := testStore(t)
	for _, p := range []platform.Compute{platform.BaselineCPU(), platform.DSCS()} {
		r := NewRunner(store, p)
		b := workload.Chatbot()
		warm, err := r.Invoke(b, Options{Quantile: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := r.Invoke(b, Options{Quantile: 0.5, Cold: true})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Breakdown.ColdStart <= 0 {
			t.Errorf("%s: cold start not charged", p.Name())
		}
		if cold.Total() <= warm.Total() {
			t.Errorf("%s: cold (%v) must exceed warm (%v)", p.Name(), cold.Total(), warm.Total())
		}
	}
}

func TestExtraFunctionsScaleBothPaths(t *testing.T) {
	store := testStore(t)
	b := workload.Clinical()
	for _, p := range []platform.Compute{platform.BaselineCPU(), platform.DSCS()} {
		r := NewRunner(store, p)
		prev := time.Duration(0)
		for extra := 0; extra <= 2; extra++ {
			res, err := r.Invoke(b, Options{Quantile: 0.5, ExtraAccelFuncs: extra})
			if err != nil {
				t.Fatal(err)
			}
			if res.Total() <= prev {
				t.Errorf("%s: +%d functions should cost more", p.Name(), extra)
			}
			prev = res.Total()
		}
	}
}

func TestBatchScalesPayloadAndCompute(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.BaselineCPU())
	b := workload.AssetDamage()
	one, err := r.Invoke(b, Options{Quantile: 0.5, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := r.Invoke(b, Options{Quantile: 0.5, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if eight.Total() <= one.Total() {
		t.Error("batch 8 must cost more end to end")
	}
	if eight.Total() >= 8*one.Total() {
		t.Error("batch 8 must amortize fixed costs")
	}
}

func TestDSCSFallsBackWithoutDrives(t *testing.T) {
	// A store with no DSCS nodes: the DSCS runner must fall back to the
	// conventional path (Section 5.3 fail-over).
	var nodes []*objstore.Node
	for i := 0; i < 3; i++ {
		d, err := ssd.New(ssd.SmartSSDClass())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("ssd-%d", i), Kind: objstore.PlainSSD, SSD: d,
		})
	}
	store, err := objstore.New(objstore.Default(), nodes, sim.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(store, platform.DSCS())
	res, err := r.Invoke(workload.Moderation(), Options{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Driver != 0 {
		t.Error("fallback path must not touch the in-storage driver")
	}
	if res.Breakdown.RemoteRead <= 0 {
		t.Error("fallback path must pay remote IO")
	}
}

func TestChainedIntermediatesStayOnDrive(t *testing.T) {
	store := testStore(t)
	r := NewRunner(store, platform.DSCS())
	b := workload.PPEDetection() // 9.8MB fp32 intermediate tensor
	res, err := r.Invoke(b, Options{Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// If the intermediate round-tripped through the store, RemoteRead/Write
	// would carry tens of milliseconds; chained execution leaves only f3's
	// small read.
	if res.Breakdown.RemoteWrite > 0 {
		t.Errorf("chained DSCS path wrote remotely: %v", res.Breakdown.RemoteWrite)
	}
	if res.Breakdown.RemoteRead > 40*time.Millisecond {
		t.Errorf("f3 read too large (%v): intermediate leaked off-drive?",
			res.Breakdown.RemoteRead)
	}
}
