// Package network models the datacenter fabric between compute nodes and
// disaggregated storage: a base round-trip, an effective per-flow bandwidth,
// and a lognormal service-time component that produces the long tail the
// paper measures against S3 (p99 ~ 2.1x the median, Figure 3).
package network

import (
	"fmt"
	"math"
	"time"

	"dscs/internal/sim"
	"dscs/internal/units"
)

// Fabric describes one network path class.
type Fabric struct {
	// RTT is the deterministic round-trip between the endpoints.
	RTT time.Duration
	// PerFlowBW is the effective single-stream payload bandwidth
	// (well below link line rate: TCP, TLS, and service framing).
	PerFlowBW units.Bandwidth
	// FirstByte is the stochastic service component: request processing
	// at the remote service until the first payload byte, independent of
	// payload size.
	FirstByte sim.LogNormal
	// ServiceBW adds a payload-proportional service component (object
	// assembly, checksumming, replication fan-in) that carries the same
	// congestion tail; zero disables it.
	ServiceBW units.Bandwidth
}

// Validate rejects incomplete fabrics.
func (f Fabric) Validate() error {
	if f.RTT < 0 {
		return fmt.Errorf("network: negative RTT")
	}
	if f.PerFlowBW <= 0 {
		return fmt.Errorf("network: non-positive bandwidth")
	}
	if f.FirstByte.Median <= 0 || f.FirstByte.Sigma < 0 {
		return fmt.Errorf("network: invalid first-byte distribution")
	}
	return nil
}

// IntraDC returns the fabric between an EC2-class compute node and the
// S3-class object service in the same region: ~1 ms RTT, ~250 MB/s
// effective single-flow, and a ~22 ms median service time with the tail
// the paper characterizes (sigma 0.32 puts p99 at ~2.1x the median).
func IntraDC() Fabric {
	return Fabric{
		RTT:       time.Millisecond,
		PerFlowBW: 250 * units.MBps,
		FirstByte: sim.LogNormal{Median: 16 * time.Millisecond, Sigma: 0.34},
		ServiceBW: 360 * units.MBps,
	}
}

// Egress returns the fabric for notification-service egress: endpoint
// latency dominated, payloads tiny.
func Egress() Fabric {
	return Fabric{
		RTT:       2 * time.Millisecond,
		PerFlowBW: 100 * units.MBps,
		FirstByte: sim.LogNormal{Median: 8 * time.Millisecond, Sigma: 0.30},
	}
}

// TransferSigma is the lognormal sigma of the congestion multiplier on the
// payload-proportional components: large transfers see fatter tails because
// congestion degrades throughput, not just request latency.
const TransferSigma = 0.30

// payloadTime is the deterministic payload-proportional time: wire transfer
// plus the service's per-byte work.
func (f Fabric) payloadTime(payload units.Bytes) time.Duration {
	d := f.PerFlowBW.TransferTime(payload)
	if f.ServiceBW > 0 {
		d += f.ServiceBW.TransferTime(payload)
	}
	return d
}

// latencyAtZ composes the request latency for one standard-normal draw z,
// which correlates the service and transfer tails (one congested path slows
// everything about the request).
func (f Fabric) latencyAtZ(payload units.Bytes, z float64) time.Duration {
	fb := time.Duration(float64(f.FirstByte.Median) * math.Exp(f.FirstByte.Sigma*z))
	xfer := time.Duration(float64(f.payloadTime(payload)) * math.Exp(TransferSigma*z))
	return f.RTT + fb + xfer
}

// RequestLatency samples the end-to-end time of one request moving payload
// bytes across the fabric.
func (f Fabric) RequestLatency(payload units.Bytes, rng *sim.RNG) time.Duration {
	return f.latencyAtZ(payload, rng.NormFloat64())
}

// QuantileLatency returns the analytic latency at percentile p — the tail
// sensitivity sweep of Figure 15 uses this instead of sampling. The same
// percentile applies to the service and transfer components, modeling the
// correlated congestion the sweep explores.
func (f Fabric) QuantileLatency(payload units.Bytes, p float64) time.Duration {
	return f.latencyAtZ(payload, sim.NormQuantile(p))
}

// MedianLatency is the 50th-percentile request latency.
func (f Fabric) MedianLatency(payload units.Bytes) time.Duration {
	return f.QuantileLatency(payload, 0.5)
}

// Scaled returns the fabric with the stochastic component's median scaled
// by k, used by the tail-latency sensitivity sweeps.
func (f Fabric) Scaled(k float64) Fabric {
	out := f
	out.FirstByte.Median = time.Duration(float64(f.FirstByte.Median) * k)
	return out
}

// TransferEnergyPerByte is the NIC+switch energy per byte moved. The paper
// omits network power (not measurable on AWS); we keep the constant so the
// energy accounting explicitly charges zero by default but the model is
// ready for non-zero values.
const TransferEnergyPerByte units.Energy = 0
