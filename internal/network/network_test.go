package network

import (
	"testing"
	"time"

	"dscs/internal/metrics"
	"dscs/internal/sim"
	"dscs/internal/units"
)

func TestIntraDCValidates(t *testing.T) {
	if err := IntraDC().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Egress().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := IntraDC()
	bad.PerFlowBW = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth must fail")
	}
	bad2 := IntraDC()
	bad2.FirstByte.Median = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero first-byte must fail")
	}
}

func TestMedianComposition(t *testing.T) {
	f := IntraDC()
	// Small read: ~RTT + first-byte.
	small := f.MedianLatency(4 * units.KB)
	if small < 10*time.Millisecond || small > 30*time.Millisecond {
		t.Errorf("small read median = %v, want 10-30ms", small)
	}
	// 18.6 MB (PPE) read: transfer-dominated, ~100-200ms.
	big := f.MedianLatency(units.Bytes(18.6 * 1e6))
	if big < 70*time.Millisecond || big > 250*time.Millisecond {
		t.Errorf("18.6MB read median = %v, want 70-250ms", big)
	}
	if big <= small {
		t.Error("larger payloads must be slower")
	}
}

func TestTailRatioMatchesPaper(t *testing.T) {
	// The paper: p99 about 110% above the median (factor ~2.1) for reads.
	f := IntraDC()
	for _, payload := range []units.Bytes{4 * units.KB, 3 * units.MB} {
		p50 := f.QuantileLatency(payload, 0.5)
		p99 := f.QuantileLatency(payload, 0.99)
		ratio := float64(p99) / float64(p50)
		if ratio < 1.6 || ratio > 2.4 {
			t.Errorf("p99/p50 at %v = %.2f, want ~2", payload, ratio)
		}
	}
}

func TestSampledMatchesAnalytic(t *testing.T) {
	f := IntraDC()
	rng := sim.NewRNG(3)
	sample := metrics.NewSample(20000)
	for i := 0; i < 20000; i++ {
		sample.Add(f.RequestLatency(units.MB, rng))
	}
	p50 := sample.Percentile(0.5)
	want := f.QuantileLatency(units.MB, 0.5)
	diff := float64(p50-want) / float64(want)
	if diff < -0.05 || diff > 0.05 {
		t.Errorf("sampled median %v vs analytic %v", p50, want)
	}
	p99 := sample.Percentile(0.99)
	want99 := f.QuantileLatency(units.MB, 0.99)
	diff99 := float64(p99-want99) / float64(want99)
	if diff99 < -0.12 || diff99 > 0.12 {
		t.Errorf("sampled p99 %v vs analytic %v", p99, want99)
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := IntraDC()
	var prev time.Duration
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		lat := f.QuantileLatency(2*units.MB, q)
		if lat <= prev {
			t.Fatalf("quantile latency not monotone at %v", q)
		}
		prev = lat
	}
}

func TestScaled(t *testing.T) {
	f := IntraDC()
	doubled := f.Scaled(2)
	if doubled.FirstByte.Median != 2*f.FirstByte.Median {
		t.Error("Scaled must scale the first-byte median")
	}
	if doubled.PerFlowBW != f.PerFlowBW {
		t.Error("Scaled must not touch bandwidth")
	}
}

func TestEgressCheaperThanStorage(t *testing.T) {
	if Egress().MedianLatency(8*units.KB) >= IntraDC().MedianLatency(8*units.MB) {
		t.Error("small egress should beat a large storage read")
	}
}
