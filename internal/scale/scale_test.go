package scale

import (
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Max: 0},
		{Min: -1, Max: 4},
		{Min: 5, Max: 4},
		{Max: 4, ColdStart: -time.Second},
		{Max: 4, IdleLinger: -time.Second},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %+v must be rejected", cfg)
		}
	}
	if err := (Config{Min: 0, Max: 4}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeFixed: "fixed", ModeReactive: "reactive", ModePredictive: "predictive",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func newScaler(t *testing.T, cfg Config) *Autoscaler {
	t.Helper()
	a, err := New(cfg, "pool")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFixedAlwaysMax(t *testing.T) {
	a := newScaler(t, Config{Mode: ModeFixed, Min: 1, Max: 10})
	for _, busy := range []int{0, 3, 10} {
		if got := a.Desired(0, busy, 0, 0); got != 10 {
			t.Errorf("fixed desired(busy=%d) = %d, want Max", busy, got)
		}
	}
}

func TestReactiveTracksBacklog(t *testing.T) {
	a := newScaler(t, Config{Mode: ModeReactive, Min: 2, Max: 10})
	for _, tc := range []struct{ busy, queued, want int }{
		{0, 0, 2},   // Min floor
		{3, 2, 5},   // busy + queued
		{8, 40, 10}, // Max ceiling
	} {
		if got := a.Desired(0, tc.busy, tc.queued, 0); got != tc.want {
			t.Errorf("reactive desired(%d, %d) = %d, want %d", tc.busy, tc.queued, got, tc.want)
		}
	}
}

// feed warms one benchmark's digests: arrivals every gap, services at svc.
func feed(a *Autoscaler, bench string, n int, gap, svc time.Duration) {
	for i := 0; i <= n; i++ {
		a.ObserveArrival(bench, time.Duration(i)*gap)
		a.ObserveService(bench, svc)
	}
}

// TestPredictiveLittlesLawFloor pins the pre-warm arithmetic: uniform
// 10ms gaps and 50ms service give demand ceil(1.25 * 50/10) = 7, which
// lifts the desired capacity above the reactive baseline before any work
// queues.
func TestPredictiveLittlesLawFloor(t *testing.T) {
	a := newScaler(t, Config{Mode: ModePredictive, Min: 1, Max: 20})
	if got := a.PredictedDemand(); got != 0 {
		t.Fatalf("cold demand = %d, want 0 (below warmup)", got)
	}
	feed(a, "bench-a", 32, 10*time.Millisecond, 50*time.Millisecond)
	if got := a.PredictedDemand(); got != 7 {
		t.Fatalf("demand = %d, want ceil(1.25*50/10) = 7", got)
	}
	if got := a.Desired(time.Second, 1, 0, 0); got != 7 {
		t.Fatalf("predictive desired = %d, want the pre-warm floor 7", got)
	}
	// A second benchmark's demand adds before the ceiling: same rate,
	// 100ms service -> 6.25 + 12.5 rounds up once to 19.
	feed(a, "bench-b", 32, 10*time.Millisecond, 100*time.Millisecond)
	if got := a.PredictedDemand(); got != 19 {
		t.Fatalf("two-bench demand = %d, want ceil(6.25 + 12.5) = 19", got)
	}
	// The backlog still wins when it exceeds the floor.
	if got := a.Desired(time.Second, 15, 10, 0); got != 20 {
		t.Fatalf("desired under backlog = %d, want Max clamp", got)
	}
}

// TestPredictiveSurgeLatch: wait p95 at cold-start scale boosts to Max
// with Adopt-band hysteresis — armed past 1.5x of ColdStart/2, released
// only under 1.2x, so the decision cannot flap at the threshold.
func TestPredictiveSurgeLatch(t *testing.T) {
	cold := time.Second
	a := newScaler(t, Config{Mode: ModePredictive, Min: 1, Max: 50, ColdStart: cold})
	half := cold / 2
	if got := a.Desired(0, 2, 0, half); got != 2 {
		t.Fatalf("desired below the entry band = %d, want busy", got)
	}
	if got := a.Desired(0, 2, 0, time.Duration(1.6*float64(half))); got != 50 {
		t.Fatalf("desired past the entry band = %d, want Max surge", got)
	}
	// Inside the hysteresis gap (1.2x..1.5x) the latch holds.
	if got := a.Desired(0, 2, 0, time.Duration(1.3*float64(half))); got != 50 {
		t.Fatalf("desired inside the hysteresis gap = %d, want Max (latched)", got)
	}
	if got := a.Desired(0, 2, 0, time.Duration(1.1*float64(half))); got != 2 {
		t.Fatalf("desired after release = %d, want busy", got)
	}
	if got := a.SurgeFlips(); got != 2 {
		t.Fatalf("surge flips = %d, want 2 (one arm, one release)", got)
	}

	// With no cold-start penalty there is nothing to pre-empt: the surge
	// path stays off no matter the wait.
	b := newScaler(t, Config{Mode: ModePredictive, Min: 1, Max: 50})
	if got := b.Desired(0, 2, 0, time.Hour); got != 2 {
		t.Fatalf("zero-cold-start surge fired: desired = %d", got)
	}
}

// TestObserveArrivalAnchors: the first arrival only anchors the gap
// stream, and a backwards timestamp is dropped rather than recorded as a
// negative gap.
func TestObserveArrivalAnchors(t *testing.T) {
	a := newScaler(t, Config{Mode: ModePredictive, Min: 0, Max: 10, Warmup: 1})
	a.ObserveArrival("b", time.Second)
	a.ObserveService("b", 10*time.Millisecond)
	if got := a.PredictedDemand(); got != 0 {
		t.Fatalf("demand after a single arrival = %d, want 0 (no gap yet)", got)
	}
	a.ObserveArrival("b", 500*time.Millisecond) // clock went backwards: dropped
	if got := a.PredictedDemand(); got != 0 {
		t.Fatalf("demand after a backwards arrival = %d, want 0", got)
	}
	a.ObserveArrival("b", 600*time.Millisecond) // 100ms after the rewound anchor
	if got := a.PredictedDemand(); got == 0 {
		t.Fatal("demand must warm once a positive gap lands")
	}
}
