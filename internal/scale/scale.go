// Package scale decides how much of a pool's capacity should be warm.
// It is the policy half of elastic workers: internal/serve's Lifecycle
// is the mechanism (slots move cold -> warming -> warm -> suspended on
// a caller-driven clock), and the Autoscaler here produces the desired
// warm capacity the lifecycle converges to. Three modes:
//
//   - Fixed: desired is always Max — the classic fixed pool, expressed
//     through the same machinery so its idle-capacity cost is measured
//     on the same axis as the elastic modes.
//   - Reactive: desired tracks the observable backlog (busy + queued).
//     Capacity grows only after work is already waiting, so every burst
//     eats the cold-start penalty before relief arrives.
//   - Predictive: reactive, plus a pre-warm floor from Little's law.
//     Per-{benchmark, pool} inter-arrival gap digests estimate the
//     near-peak arrival rate (a low gap quantile provisions for bursts,
//     and the sliding window follows the diurnal cycle), multiplied by
//     the observed p50 service time; a hysteresis latch on the pool's
//     wait p95 (the same Adopt bands as adaptive pricing, PR 4/5)
//     boosts to Max while waits run at cold-start scale, without
//     flapping at the threshold.
//
// The Autoscaler owns no goroutines and no clock: callers feed it
// arrivals and completions stamped with their own clock — wall time in
// the live engine, virtual time in the discrete-event sims — and ask
// for Desired at their own cadence.
package scale

import (
	"fmt"
	"math"
	"sync"
	"time"

	"dscs/internal/metrics"
)

// Mode selects the scaling policy.
type Mode int

const (
	// ModeFixed pins desired capacity at Max.
	ModeFixed Mode = iota
	// ModeReactive sizes to the observed backlog.
	ModeReactive
	// ModePredictive adds the Little's-law pre-warm floor and the
	// wait-latch surge to the reactive baseline.
	ModePredictive
)

// String names the mode for flags and logs.
func (m Mode) String() string {
	switch m {
	case ModeFixed:
		return "fixed"
	case ModeReactive:
		return "reactive"
	case ModePredictive:
		return "predictive"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config bounds and parameterizes one pool's autoscaler.
type Config struct {
	Mode Mode
	// Min and Max bound the desired capacity; they mirror the pool
	// lifecycle's bounds.
	Min, Max int
	// ColdStart is the warming penalty the lifecycle will charge; the
	// surge latch compares wait p95 against half of it — once requests
	// wait on the order of a cold start, warming everything is cheaper
	// than queueing.
	ColdStart time.Duration
	// IdleLinger rides along for callers that build the lifecycle from
	// the same config; the autoscaler itself never reads it.
	IdleLinger time.Duration
	// Warmup is the per-benchmark observation count below which the
	// predictive floor stays silent (default DefaultWarmup).
	Warmup int
	// Window sizes the gap/service digests (default metrics.DefaultWindow).
	Window int
}

// DefaultWarmup is the per-benchmark observation floor for the
// predictive demand estimate. It is lower than metrics.DefaultWarmup:
// a pool-level rate estimate fans out over many benchmarks, and waiting
// 32 arrivals per benchmark would mute pre-warm for entire bursts.
const DefaultWarmup = 16

// GapQuantile is the inter-arrival quantile the rate estimate inverts.
// A low quantile reads the burst-level gap, not the average, so the
// pre-warm floor provisions for the traffic's fast mode.
const GapQuantile = 0.25

// Headroom multiplies the Little's-law demand so stochastic arrivals
// don't queue at exactly-critical utilization.
const Headroom = 1.25

// Validate rejects impossible bounds.
func (c Config) Validate() error {
	if c.Max <= 0 {
		return fmt.Errorf("scale: Max must be positive, got %d", c.Max)
	}
	if c.Min < 0 || c.Min > c.Max {
		return fmt.Errorf("scale: Min %d outside [0, Max=%d]", c.Min, c.Max)
	}
	if c.ColdStart < 0 || c.IdleLinger < 0 {
		return fmt.Errorf("scale: negative durations")
	}
	return nil
}

// Autoscaler produces desired warm capacity for one pool. Safe for
// concurrent use: observations arrive from every submitter goroutine in
// the live engine, while Desired runs under the pool lock.
type Autoscaler struct {
	cfg  Config
	pool string

	mu      sync.Mutex
	last    map[string]time.Duration // last arrival instant per benchmark
	benches []string                 // insertion order: deterministic demand sums
	gaps    *metrics.Observatory     // inter-arrival gaps per {benchmark, pool}
	svc     *metrics.Observatory     // service times per {benchmark, pool}
	surge   metrics.Latch            // wait-p95 vs. cold-start hysteresis
}

// New builds an autoscaler for the named pool.
func New(cfg Config, pool string) (*Autoscaler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = DefaultWarmup
	}
	return &Autoscaler{
		cfg:  cfg,
		pool: pool,
		last: make(map[string]time.Duration),
		gaps: metrics.NewObservatory(cfg.Window, cfg.Warmup),
		svc:  metrics.NewObservatory(cfg.Window, cfg.Warmup),
	}, nil
}

// Config returns the bounds the autoscaler was built with.
func (a *Autoscaler) Config() Config { return a.cfg }

// ObserveArrival folds one admission at now into the benchmark's
// inter-arrival digest. The first arrival of a benchmark only anchors
// the gap stream.
func (a *Autoscaler) ObserveArrival(bench string, now time.Duration) {
	a.mu.Lock()
	prev, ok := a.last[bench]
	a.last[bench] = now
	if !ok {
		a.benches = append(a.benches, bench)
	}
	a.mu.Unlock()
	if ok && now >= prev {
		a.gaps.Record(bench, a.pool, now-prev)
	}
}

// ObserveService folds one completed execution's service time into the
// benchmark's digest; the predictive floor prices demand with its p50.
func (a *Autoscaler) ObserveService(bench string, d time.Duration) {
	if d > 0 {
		a.svc.Record(bench, a.pool, d)
	}
}

// Desired returns the warm capacity target at now, clamped to
// [Min, Max]. busy and queued describe the pool; waitP95 is the pool's
// adopted queue-wait p95 (zero when unwarmed), which only the
// predictive surge latch reads.
func (a *Autoscaler) Desired(now time.Duration, busy, queued int, waitP95 time.Duration) int {
	target := busy + queued
	switch a.cfg.Mode {
	case ModeFixed:
		target = a.cfg.Max
	case ModePredictive:
		if d := a.PredictedDemand(); d > target {
			target = d
		}
		a.mu.Lock()
		surge := a.cfg.ColdStart > 0 && a.surge.Above(waitP95, a.cfg.ColdStart/2)
		a.mu.Unlock()
		if surge {
			target = a.cfg.Max
		}
	}
	if target < a.cfg.Min {
		target = a.cfg.Min
	}
	if target > a.cfg.Max {
		target = a.cfg.Max
	}
	return target
}

// PredictedDemand is the Little's-law pre-warm floor: for every warmed
// benchmark, the near-peak arrival rate (the inverse of a low quantile
// of its inter-arrival gaps) times its observed p50 service time, summed
// and padded with Headroom. Benchmarks below warmup contribute nothing —
// the reactive baseline carries them until their digests fill.
func (a *Autoscaler) PredictedDemand() int {
	a.mu.Lock()
	benches := a.benches
	a.mu.Unlock()
	demand := 0.0
	for _, b := range benches {
		gd := a.gaps.Digest(b, a.pool)
		sd := a.svc.Digest(b, a.pool)
		if gd == nil || sd == nil || gd.Count() < int64(a.cfg.Warmup) || sd.Count() < int64(a.cfg.Warmup) {
			continue
		}
		gap := gd.Quantile(GapQuantile)
		if gap < time.Microsecond {
			gap = time.Microsecond // coincident arrivals: cap the implied rate
		}
		p50 := sd.Quantile(0.5)
		if p50 <= 0 {
			continue
		}
		demand += Headroom * float64(p50) / float64(gap)
	}
	return int(math.Ceil(demand))
}

// SurgeFlips counts surge-latch toggles — the no-flapping tests pin it.
func (a *Autoscaler) SurgeFlips() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.surge.Flips()
}
