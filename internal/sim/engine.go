// Package sim provides the discrete-event simulation kernel used by every
// system-level experiment: a virtual clock, an event queue, and deterministic
// random distributions.
//
// The engine processes events in timestamp order; events scheduled for the
// same instant run in FIFO order of scheduling, which keeps runs fully
// deterministic for a fixed seed.
package sim

import (
	"container/heap"
	"time"
)

// Event is a callback scheduled to run at a virtual instant.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) clamps to the current instant so causality is preserved.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Stop halts the run loop after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue drains or Stop is called.
// It returns the final virtual time.
func (e *Engine) Run() time.Duration {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil processes events with timestamps <= deadline. Events beyond the
// deadline stay queued; the clock is left at the deadline (or the final event
// time if the queue drained earlier).
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > deadline {
			e.now = deadline
			return e.now
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports how many events remain queued.
func (e *Engine) Pending() int { return len(e.queue) }
