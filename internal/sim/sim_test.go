package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30*time.Millisecond, func() { order = append(order, 3) })
	e.After(10*time.Millisecond, func() { order = append(order, 1) })
	e.After(20*time.Millisecond, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("final time = %v, want 30ms", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if len(ticks) < 5 {
			e.After(time.Second, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, at := range ticks {
		if at != time.Duration(i)*time.Second {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	var ranAt time.Duration
	e.After(time.Second, func() {
		e.At(0, func() { ranAt = e.Now() }) // in the past; must clamp
	})
	e.Run()
	if ranAt != time.Second {
		t.Fatalf("past event ran at %v, want clamp to 1s", ranAt)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i)*time.Second, func() { ran++ })
	}
	e.RunUntil(5 * time.Second)
	if ran != 5 {
		t.Fatalf("ran %d events, want 5", ran)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("clock at %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.Run()
	if ran != 10 {
		t.Fatalf("after full run, ran = %d, want 10", ran)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i), func() {
			ran++
			if ran == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran %d events after Stop, want 3", ran)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
	for i := 0; i < 1000; i++ {
		if n := r.Intn(17); n < 0 || n >= 17 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(1)
	mean := 100 * time.Millisecond
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-float64(mean))/float64(mean) > 0.05 {
		t.Fatalf("exp mean = %v, want ~%v", time.Duration(got), mean)
	}
}

func TestLogNormalMedianAndTail(t *testing.T) {
	r := NewRNG(2)
	d := LogNormal{Median: 50 * time.Millisecond, Sigma: 0.32}
	vals := make([]time.Duration, 20000)
	for i := range vals {
		vals[i] = d.Sample(r)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	median := vals[len(vals)/2]
	p99 := vals[len(vals)*99/100]
	if math.Abs(float64(median)-float64(d.Median))/float64(d.Median) > 0.05 {
		t.Fatalf("median = %v, want ~%v", median, d.Median)
	}
	// sigma 0.32 puts p99 at ~2.1x the median (the paper's 110% gap).
	ratio := float64(p99) / float64(median)
	if ratio < 1.9 || ratio > 2.3 {
		t.Fatalf("p99/median = %.2f, want ~2.1", ratio)
	}
}

func TestLogNormalQuantile(t *testing.T) {
	d := LogNormal{Median: 50 * time.Millisecond, Sigma: 0.32}
	if q := d.Quantile(0.5); q != 50*time.Millisecond {
		t.Fatalf("median quantile = %v", q)
	}
	q99 := d.Quantile(0.99)
	ratio := float64(q99) / float64(d.Median)
	if ratio < 2.0 || ratio > 2.2 {
		t.Fatalf("analytic p99/median = %.3f, want ~2.1", ratio)
	}
	if d.Quantile(0.25) >= d.Quantile(0.75) {
		t.Fatal("quantile not monotonic")
	}
}

func TestNormQuantileInverse(t *testing.T) {
	// NormQuantile should invert the normal CDF at standard points.
	cases := map[float64]float64{
		0.5:    0,
		0.8413: 1.0,
		0.9772: 2.0,
		0.99:   2.326,
	}
	for p, want := range cases {
		if got := NormQuantile(p); math.Abs(got-want) > 0.01 {
			t.Errorf("NormQuantile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(99)
	s1 := r.Split()
	s2 := r.Split()
	equal := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("split streams collided %d times", equal)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	d := LogNormal{Median: 30 * time.Millisecond, Sigma: 0.4}
	f := func(a, b uint8) bool {
		p1 := float64(a%100)/100 + 0.001
		p2 := float64(b%100)/100 + 0.001
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return d.Quantile(p1) <= d.Quantile(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
