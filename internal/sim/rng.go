package sim

import (
	"math"
	"time"
)

// RNG is a small deterministic pseudo-random generator (splitmix64 core)
// with the distributions the experiments need. It is not safe for concurrent
// use; give each simulated component its own stream via Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9E3779B97F4A7C15}
}

// Split derives an independent stream; the parent advances once.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	// Reject u1 == 0 to keep the log finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return time.Duration(-math.Log(u) * float64(mean))
}

// LogNormal describes a lognormal distribution by its median and the sigma
// of the underlying normal. The paper's storage tail (p99 about 2.1x the
// median) corresponds to sigma = ln(2.1)/2.326 ~= 0.32.
type LogNormal struct {
	Median time.Duration
	Sigma  float64
}

// Sample draws one latency from the distribution.
func (d LogNormal) Sample(r *RNG) time.Duration {
	if d.Median <= 0 {
		return 0
	}
	z := r.NormFloat64()
	return time.Duration(float64(d.Median) * math.Exp(d.Sigma*z))
}

// Quantile returns the latency at percentile p in [0, 1].
func (d LogNormal) Quantile(p float64) time.Duration {
	if d.Median <= 0 {
		return 0
	}
	z := NormQuantile(p)
	return time.Duration(float64(d.Median) * math.Exp(d.Sigma*z))
}

// NormQuantile is the inverse standard normal CDF (Acklam's rational
// approximation, accurate to ~1e-9 over (0,1)).
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	const phigh = 1 - plow
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		rr := q * q
		return (((((a[0]*rr+a[1])*rr+a[2])*rr+a[3])*rr+a[4])*rr + a[5]) * q /
			(((((b[0]*rr+b[1])*rr+b[2])*rr+b[3])*rr+b[4])*rr + 1)
	}
}
