// Package flash models the NAND flash array inside the drive: a geometry of
// channels, dies, and planes with page-granular read/program timing, an FTL
// that stripes logical pages across the array for parallelism, and a
// latency model that accounts for die-level overlap and channel bus
// serialization — the substrate the DSCS-Drive's P2P path reads from.
package flash

import (
	"fmt"
	"time"

	"dscs/internal/units"
)

// Geometry describes the physical organization of the array.
type Geometry struct {
	Channels       int
	DiesPerChannel int
	PlanesPerDie   int
	PageSize       units.Bytes
	PagesPerBlock  int
	BlocksPerPlane int

	ReadLatency    time.Duration // tR: array -> page register
	ProgramLatency time.Duration // tPROG
	EraseLatency   time.Duration // tBERS
	ChannelBW      units.Bandwidth

	// Energy per byte moved through the array (sense + transfer).
	ReadEnergyPerByte  units.Energy
	WriteEnergyPerByte units.Energy
}

// SmartSSDClass returns a geometry in the class of a 4 TB datacenter TLC
// drive: 8 channels x 4 dies, 16 KiB pages, 1.2 GB/s ONFI channels.
func SmartSSDClass() Geometry {
	return Geometry{
		Channels:       8,
		DiesPerChannel: 4,
		PlanesPerDie:   2,
		PageSize:       16 * units.KiB,
		PagesPerBlock:  1024,
		BlocksPerPlane: 4096,

		ReadLatency:    60 * time.Microsecond,
		ProgramLatency: 700 * time.Microsecond,
		EraseLatency:   3 * time.Millisecond,
		ChannelBW:      1.2 * units.GBps,

		ReadEnergyPerByte:  50 * units.PicoJoule,
		WriteEnergyPerByte: 350 * units.PicoJoule,
	}
}

// Validate rejects degenerate geometries.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.DiesPerChannel <= 0 || g.PlanesPerDie <= 0 {
		return fmt.Errorf("flash: non-positive parallelism dims")
	}
	if g.PageSize <= 0 || g.PagesPerBlock <= 0 || g.BlocksPerPlane <= 0 {
		return fmt.Errorf("flash: non-positive capacity dims")
	}
	if g.ReadLatency <= 0 || g.ProgramLatency <= 0 || g.ChannelBW <= 0 {
		return fmt.Errorf("flash: non-positive timing")
	}
	return nil
}

// Capacity returns the raw array capacity.
func (g Geometry) Capacity() units.Bytes {
	return g.PageSize * units.Bytes(g.PagesPerBlock) * units.Bytes(g.BlocksPerPlane) *
		units.Bytes(g.PlanesPerDie) * units.Bytes(g.DiesPerChannel) * units.Bytes(g.Channels)
}

func (g Geometry) totalDies() int { return g.Channels * g.DiesPerChannel }

// pageXfer is the channel-bus time for one page.
func (g Geometry) pageXfer() time.Duration {
	return g.ChannelBW.TransferTime(g.PageSize)
}

// PPA is a physical page address.
type PPA struct {
	Channel, Die, Plane, Block, Page int
}

// Array is the flash array with its FTL state. Not safe for concurrent use;
// the drive serializes access as real controllers do per queue pair.
type Array struct {
	geo Geometry

	// FTL: logical page number -> physical page address.
	l2p map[int64]PPA
	// next physical page cursor per die (simple append-only allocation;
	// steady-state GC cost is folded into ProgramLatency).
	cursor []int64
	// invalidated counts pages made stale by overwrites.
	invalidated int64
	// programs counts page writes per die for wear accounting.
	programs []int64
}

// NewArray returns an array with an empty FTL.
func NewArray(geo Geometry) (*Array, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	return &Array{
		geo:      geo,
		l2p:      make(map[int64]PPA),
		cursor:   make([]int64, geo.totalDies()),
		programs: make([]int64, geo.totalDies()),
	}, nil
}

// Geometry returns the array's geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// pagesFor returns the page count spanning n bytes.
func (a *Array) pagesFor(n units.Bytes) int64 {
	if n <= 0 {
		return 0
	}
	return int64((n + a.geo.PageSize - 1) / a.geo.PageSize)
}

// dieIndex flattens a channel/die pair.
func (a *Array) dieIndex(channel, die int) int {
	return channel*a.geo.DiesPerChannel + die
}

// allocate assigns the next physical page on the least-written die,
// striping load across the whole array (dynamic wear leveling).
func (a *Array) allocate() (PPA, int) {
	best := 0
	for i := 1; i < len(a.cursor); i++ {
		if a.cursor[i] < a.cursor[best] {
			best = i
		}
	}
	seq := a.cursor[best]
	a.cursor[best]++
	a.programs[best]++
	pagesPerPlane := int64(a.geo.PagesPerBlock) * int64(a.geo.BlocksPerPlane)
	plane := int(seq/int64(a.geo.PagesPerBlock)) % a.geo.PlanesPerDie
	within := seq % (pagesPerPlane * int64(a.geo.PlanesPerDie))
	block := int(within/int64(a.geo.PagesPerBlock)) % a.geo.BlocksPerPlane
	page := int(seq % int64(a.geo.PagesPerBlock))
	return PPA{
		Channel: best / a.geo.DiesPerChannel,
		Die:     best % a.geo.DiesPerChannel,
		Plane:   plane,
		Block:   block,
		Page:    page,
	}, best
}

// Write programs the logical pages backing [lpnStart, lpnStart+pages) and
// returns the operation latency. Overwrites remap and invalidate.
func (a *Array) Write(lpnStart, pages int64) (time.Duration, units.Energy) {
	if pages <= 0 {
		return 0, 0
	}
	perDie := make([]int64, a.geo.totalDies())
	for i := int64(0); i < pages; i++ {
		lpn := lpnStart + i
		if _, ok := a.l2p[lpn]; ok {
			a.invalidated++
		}
		ppa, die := a.allocate()
		a.l2p[lpn] = ppa
		perDie[die]++
	}
	lat := a.opLatency(perDie, a.geo.ProgramLatency)
	energy := units.Energy(float64(pages)*float64(a.geo.PageSize)) * a.geo.WriteEnergyPerByte
	return lat, energy
}

// WriteBytes programs n bytes at a logical byte offset.
func (a *Array) WriteBytes(offset int64, n units.Bytes) (time.Duration, units.Energy) {
	start := offset / int64(a.geo.PageSize)
	return a.Write(start, a.pagesFor(n))
}

// Read returns the latency of reading the logical pages
// [lpnStart, lpnStart+pages). Unmapped pages read as zero-fill from the
// controller without touching the array.
func (a *Array) Read(lpnStart, pages int64) (time.Duration, units.Energy) {
	if pages <= 0 {
		return 0, 0
	}
	perChannel := make([]int64, a.geo.Channels)
	perDie := make([]int64, a.geo.totalDies())
	var mapped int64
	for i := int64(0); i < pages; i++ {
		ppa, ok := a.l2p[lpnStart+i]
		if !ok {
			continue
		}
		mapped++
		perChannel[ppa.Channel]++
		perDie[a.dieIndex(ppa.Channel, ppa.Die)]++
	}
	if mapped == 0 {
		// Zero-fill read: controller-only, a page transfer worth of work.
		return a.geo.pageXfer(), 0
	}
	lat := a.readLatency(perChannel, perDie)
	energy := units.Energy(float64(mapped)*float64(a.geo.PageSize)) * a.geo.ReadEnergyPerByte
	return lat, energy
}

// ReadBytes reads n bytes at a logical byte offset.
func (a *Array) ReadBytes(offset int64, n units.Bytes) (time.Duration, units.Energy) {
	start := offset / int64(a.geo.PageSize)
	return a.Read(start, a.pagesFor(n))
}

// readLatency composes die-level sensing with channel bus serialization:
// per channel, dies sense pages in parallel waves of tR while the shared
// bus streams finished pages; the channel finishes at
// max(sense pipeline, bus serialization) + the first page's sense.
func (a *Array) readLatency(perChannel, perDie []int64) time.Duration {
	var worst time.Duration
	for ch := 0; ch < a.geo.Channels; ch++ {
		pages := perChannel[ch]
		if pages == 0 {
			continue
		}
		// Deepest die queue on this channel bounds the sensing pipeline.
		var deepest int64
		for d := 0; d < a.geo.DiesPerChannel; d++ {
			if q := perDie[a.dieIndex(ch, d)]; q > deepest {
				deepest = q
			}
		}
		sense := time.Duration(deepest) * a.geo.ReadLatency
		bus := time.Duration(pages) * a.geo.pageXfer()
		total := a.geo.ReadLatency + maxDur(sense-a.geo.ReadLatency, bus)
		if total > worst {
			worst = total
		}
	}
	return worst
}

// opLatency is the program/erase analogue: per-die serialization dominates
// because program time far exceeds bus time.
func (a *Array) opLatency(perDie []int64, per time.Duration) time.Duration {
	var deepest int64
	for _, q := range perDie {
		if q > deepest {
			deepest = q
		}
	}
	return time.Duration(deepest) * per
}

// MappedPages reports how many logical pages are live.
func (a *Array) MappedPages() int64 { return int64(len(a.l2p)) }

// InvalidatedPages reports pages made stale by overwrites.
func (a *Array) InvalidatedPages() int64 { return a.invalidated }

// WearSpread returns max/min die program counts (1.0 is perfectly even);
// returns 1 when nothing has been written.
func (a *Array) WearSpread() float64 {
	minW, maxW := int64(-1), int64(0)
	for _, w := range a.programs {
		if minW < 0 || w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW == 0 {
		return 1
	}
	if minW == 0 {
		minW = 1
	}
	return float64(maxW) / float64(minW)
}

// SustainedReadBW reports the array's streaming read bandwidth given full
// parallelism: per channel the min of die sensing rate and bus rate.
func (g Geometry) SustainedReadBW() units.Bandwidth {
	perDie := float64(g.PageSize) / g.ReadLatency.Seconds()
	senseRate := perDie * float64(g.DiesPerChannel)
	busRate := float64(g.ChannelBW)
	per := senseRate
	if busRate < per {
		per = busRate
	}
	return units.Bandwidth(per * float64(g.Channels))
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
