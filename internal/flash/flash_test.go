package flash

import (
	"testing"
	"testing/quick"
	"time"

	"dscs/internal/units"
)

func newArray(t *testing.T) *Array {
	t.Helper()
	a, err := NewArray(SmartSSDClass())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryCapacity(t *testing.T) {
	g := SmartSSDClass()
	// 8ch x 4 dies x 2 planes x 1024 blocks x 256 pages x 16KiB = 4 TiB raw.
	if c := g.Capacity(); c != 4*units.Bytes(1<<40) {
		t.Errorf("capacity = %v, want 4TiB", c)
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := SmartSSDClass().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := SmartSSDClass()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels should fail")
	}
	bad2 := SmartSSDClass()
	bad2.ReadLatency = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero tR should fail")
	}
}

func TestSustainedReadBW(t *testing.T) {
	// 8 channels, bus-limited at 1.2 GB/s or sense-limited at
	// 4 x 16KiB/60us = 1.09 GB/s per channel -> ~8.7 GB/s array-wide.
	bw := SmartSSDClass().SustainedReadBW()
	if bw < 7*units.GBps || bw > 10*units.GBps {
		t.Errorf("sustained read bw = %v, want 7-10GB/s", bw)
	}
}

func TestWriteThenReadMapped(t *testing.T) {
	a := newArray(t)
	lat, energy := a.WriteBytes(0, 4*units.MiB)
	if lat <= 0 || energy <= 0 {
		t.Fatalf("write lat=%v energy=%v", lat, energy)
	}
	if a.MappedPages() != 256 {
		t.Fatalf("mapped pages = %d, want 256", a.MappedPages())
	}
	rlat, renergy := a.ReadBytes(0, 4*units.MiB)
	if rlat <= 0 || renergy <= 0 {
		t.Fatalf("read lat=%v energy=%v", rlat, renergy)
	}
	// Reads are far faster than programs.
	if rlat >= lat {
		t.Errorf("read %v should beat program %v", rlat, lat)
	}
}

func TestUnmappedReadIsZeroFill(t *testing.T) {
	a := newArray(t)
	lat, energy := a.ReadBytes(1<<30, 64*units.KiB)
	if energy != 0 {
		t.Error("zero-fill read must not touch the array")
	}
	if lat <= 0 || lat > 100*time.Microsecond {
		t.Errorf("zero-fill latency = %v", lat)
	}
}

func TestParallelismSpeedsReads(t *testing.T) {
	// A multi-page read striped across channels must be much faster than
	// pages x tR serialized.
	a := newArray(t)
	const size = 8 * units.MiB // 512 pages
	a.WriteBytes(0, size)
	lat, _ := a.ReadBytes(0, size)
	serial := time.Duration(512) * SmartSSDClass().ReadLatency
	if lat >= serial/4 {
		t.Errorf("striped read %v should be >4x faster than serial %v", lat, serial)
	}
	// And no faster than the array's sustained bandwidth allows.
	floor := SmartSSDClass().SustainedReadBW().TransferTime(size)
	if lat < floor/2 {
		t.Errorf("read %v implausibly beats bandwidth floor %v", lat, floor)
	}
}

func TestOverwriteInvalidates(t *testing.T) {
	a := newArray(t)
	a.WriteBytes(0, 1*units.MiB)
	if a.InvalidatedPages() != 0 {
		t.Fatal("fresh writes must not invalidate")
	}
	a.WriteBytes(0, 1*units.MiB)
	if a.InvalidatedPages() != 64 {
		t.Errorf("invalidated = %d, want 64", a.InvalidatedPages())
	}
	// Remap means still exactly 64 live pages.
	if a.MappedPages() != 64 {
		t.Errorf("mapped = %d, want 64", a.MappedPages())
	}
}

func TestWearLeveling(t *testing.T) {
	a := newArray(t)
	for i := 0; i < 64; i++ {
		a.WriteBytes(int64(i)*int64(units.MiB), 1*units.MiB)
	}
	if spread := a.WearSpread(); spread > 1.5 {
		t.Errorf("wear spread = %.2f, want near 1.0", spread)
	}
}

func TestReadLatencyGrowsWithSize(t *testing.T) {
	a := newArray(t)
	a.WriteBytes(0, 64*units.MiB)
	small, _ := a.ReadBytes(0, 64*units.KiB)
	big, _ := a.ReadBytes(0, 64*units.MiB)
	if big <= small {
		t.Errorf("64MiB read %v should exceed 64KiB read %v", big, small)
	}
}

func TestZeroSizedOps(t *testing.T) {
	a := newArray(t)
	if lat, e := a.ReadBytes(0, 0); lat != 0 || e != 0 {
		t.Error("zero read should be free")
	}
	if lat, e := a.WriteBytes(0, 0); lat != 0 || e != 0 {
		t.Error("zero write should be free")
	}
}

func TestMappingUniquenessProperty(t *testing.T) {
	// Distinct logical pages must map to distinct physical pages.
	a := newArray(t)
	a.Write(0, 2000)
	seen := make(map[PPA]bool)
	for lpn := int64(0); lpn < 2000; lpn++ {
		ppa, ok := a.l2p[lpn]
		if !ok {
			t.Fatalf("lpn %d unmapped", lpn)
		}
		if seen[ppa] {
			t.Fatalf("ppa %+v assigned twice", ppa)
		}
		seen[ppa] = true
		if ppa.Channel < 0 || ppa.Channel >= a.geo.Channels ||
			ppa.Die < 0 || ppa.Die >= a.geo.DiesPerChannel ||
			ppa.Plane < 0 || ppa.Plane >= a.geo.PlanesPerDie {
			t.Fatalf("ppa out of geometry: %+v", ppa)
		}
	}
}

func TestPagesForProperty(t *testing.T) {
	a := newArray(t)
	f := func(n uint32) bool {
		b := units.Bytes(n)
		pages := a.pagesFor(b)
		ps := int64(a.geo.PageSize)
		return pages*ps >= int64(b) && (pages-1)*ps < int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
