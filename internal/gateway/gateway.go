// Package gateway exposes the serverless framework over HTTP with an
// OpenFaaS-style API: deploy an application from its YAML (with the
// in-storage acceleration hints), invoke it, list deployments, and scrape
// telemetry. The gateway routes accelerated applications to the
// DSCS-Serverless runner and everything else (or explicit requests) to the
// CPU baseline — the minimal-disruption integration of Section 5.1.
package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dscs/internal/faas"
	"dscs/internal/sched"
	"dscs/internal/workload"
)

// Deployment is one registered application.
type Deployment struct {
	App       *faas.Application
	Benchmark *workload.Benchmark
	YAML      string
	At        time.Time
}

// Gateway serves the API. Safe for concurrent use.
type Gateway struct {
	mu      sync.Mutex
	apps    map[string]*Deployment
	runners map[string]*faas.Runner
	// route maps an application to its default runner name.
	defaultAccel, defaultPlain string
	tel                        *sched.Telemetry
}

// New builds a gateway over the given runners. accelRunner serves
// applications whose chains carry acceleration hints; plainRunner the rest.
func New(runners map[string]*faas.Runner, accelRunner, plainRunner string) (*Gateway, error) {
	if _, ok := runners[accelRunner]; !ok {
		return nil, fmt.Errorf("gateway: unknown accelerated runner %q", accelRunner)
	}
	if _, ok := runners[plainRunner]; !ok {
		return nil, fmt.Errorf("gateway: unknown plain runner %q", plainRunner)
	}
	return &Gateway{
		apps:         make(map[string]*Deployment),
		runners:      runners,
		defaultAccel: accelRunner,
		defaultPlain: plainRunner,
		tel:          sched.NewTelemetry(),
	}, nil
}

// Telemetry exposes the gateway's metric registry.
func (g *Gateway) Telemetry() *sched.Telemetry { return g.tel }

// Handler returns the HTTP API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", g.health)
	mux.HandleFunc("/system/functions", g.systemFunctions)
	mux.HandleFunc("/function/", g.invoke)
	mux.HandleFunc("/metrics", g.metrics)
	return mux
}

func (g *Gateway) health(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// systemFunctions handles deploys (POST, YAML body) and listing (GET).
func (g *Gateway) systemFunctions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		g.deploy(w, r)
	case http.MethodGet:
		g.list(w)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) deploy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	app, err := faas.ParseApplication(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bench := workload.BySlug(app.Name)
	if bench == nil {
		http.Error(w, fmt.Sprintf("no workload data for application %q", app.Name),
			http.StatusUnprocessableEntity)
		return
	}
	g.mu.Lock()
	g.apps[app.Name] = &Deployment{App: app, Benchmark: bench, YAML: string(body), At: time.Now()}
	g.mu.Unlock()
	g.tel.Inc("gateway_deployments_total", 1)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]interface{}{
		"deployed":    app.Name,
		"functions":   len(app.Chain),
		"accelerated": len(app.AcceleratedPrefix()),
	})
}

// listEntry is one row of the deployment listing.
type listEntry struct {
	Name        string `json:"name"`
	Functions   int    `json:"functions"`
	Accelerated int    `json:"accelerated_functions"`
	Model       string `json:"model"`
	Runner      string `json:"default_runner"`
}

func (g *Gateway) list(w http.ResponseWriter) {
	g.mu.Lock()
	entries := make([]listEntry, 0, len(g.apps))
	for _, d := range g.apps {
		entries = append(entries, listEntry{
			Name:        d.App.Name,
			Functions:   len(d.App.Chain),
			Accelerated: len(d.App.AcceleratedPrefix()),
			Model:       d.Benchmark.Model.Name,
			Runner:      g.routeFor(d),
		})
	}
	g.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	writeJSON(w, entries)
}

// routeFor picks the default runner for a deployment.
func (g *Gateway) routeFor(d *Deployment) string {
	if len(d.App.AcceleratedPrefix()) > 0 {
		return g.defaultAccel
	}
	return g.defaultPlain
}

// invokeRequest is the invocation body (all fields optional).
type invokeRequest struct {
	Batch    int     `json:"batch"`
	Cold     bool    `json:"cold"`
	Quantile float64 `json:"quantile"`
}

// invokeResponse reports one invocation.
type invokeResponse struct {
	Application string  `json:"application"`
	Platform    string  `json:"platform"`
	TotalMS     float64 `json:"total_ms"`
	StackMS     float64 `json:"stack_ms"`
	RemoteIOMS  float64 `json:"remote_io_ms"`
	ComputeMS   float64 `json:"compute_ms"`
	DeviceIOMS  float64 `json:"device_io_ms"`
	DriverMS    float64 `json:"driver_ms"`
	ColdMS      float64 `json:"cold_start_ms"`
	NotifyMS    float64 `json:"notify_ms"`
	EnergyJ     float64 `json:"energy_j"`
}

func (g *Gateway) invoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/function/")
	g.mu.Lock()
	d, ok := g.apps[name]
	g.mu.Unlock()
	if !ok {
		g.tel.Inc("gateway_not_found_total", 1)
		http.Error(w, fmt.Sprintf("application %q not deployed", name), http.StatusNotFound)
		return
	}

	var req invokeRequest
	if r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err == nil && len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
	}

	runnerName := g.routeFor(d)
	if p := r.URL.Query().Get("platform"); p != "" {
		if _, ok := g.runners[p]; !ok {
			http.Error(w, fmt.Sprintf("unknown platform %q", p), http.StatusBadRequest)
			return
		}
		runnerName = p
	}
	runner := g.runners[runnerName]

	res, err := runner.Invoke(d.Benchmark, faas.Options{
		Batch: req.Batch, Cold: req.Cold, Quantile: req.Quantile,
	})
	if err != nil {
		g.tel.Inc("gateway_errors_total", 1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	g.tel.Inc("gateway_invocations_total", 1)
	g.tel.Inc("gateway_invocations_total{platform="+runnerName+"}", 1)

	ms := func(dur time.Duration) float64 { return float64(dur) / float64(time.Millisecond) }
	bd := res.Breakdown
	writeJSON(w, invokeResponse{
		Application: name,
		Platform:    runnerName,
		TotalMS:     ms(res.Total()),
		StackMS:     ms(bd.Stack),
		RemoteIOMS:  ms(bd.RemoteRead + bd.RemoteWrite),
		ComputeMS:   ms(bd.Compute),
		DeviceIOMS:  ms(bd.DeviceIO),
		DriverMS:    ms(bd.Driver),
		ColdMS:      ms(bd.ColdStart),
		NotifyMS:    ms(bd.Notify),
		EnergyJ:     float64(res.Energy),
	})
}

func (g *Gateway) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, g.tel.Render())
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
