// Package gateway exposes the serverless framework over HTTP with an
// OpenFaaS-style API: deploy an application from its YAML (with the
// in-storage acceleration hints), invoke it, list deployments, and scrape
// telemetry. The gateway routes accelerated applications to the
// DSCS-Serverless pool and everything else (or explicit requests) to the
// CPU baseline — the minimal-disruption integration of Section 5.1.
//
// Invocations flow through the concurrent serving engine (internal/serve):
// per-platform worker pools, bounded-queue admission control (a full queue
// is HTTP 429), pluggable scheduling policies, and same-benchmark request
// batching. Nothing on the request path holds a gateway-wide lock.
// /metrics surfaces the engine's telemetry alongside the gateway counters,
// including the per-{platform, class} queue-delay quantile gauges
// (serve_queue_delay_p50/p95/p99) that adaptive balancing keys on. See
// ARCHITECTURE.md at the repository root for the full request path.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dscs/internal/faas"
	"dscs/internal/sched"
	"dscs/internal/serve"
	"dscs/internal/trace"
	"dscs/internal/workload"
)

// Deployment is one registered application.
type Deployment struct {
	App       *faas.Application
	Benchmark *workload.Benchmark
	YAML      string
	At        time.Time
}

// Gateway serves the API. Safe for concurrent use: the deployment registry
// sits behind a read-write lock and invocations go straight to the serving
// engine — no gateway-wide mutex serializes the request path.
type Gateway struct {
	mu     sync.RWMutex
	apps   map[string]*Deployment
	engine *serve.Engine
	// route maps an application to its default platform pool.
	defaultAccel, defaultPlain string
	tel                        *sched.Telemetry
}

// New builds a gateway over the given runners with default serving-engine
// options. accelRunner serves applications whose chains carry acceleration
// hints; plainRunner the rest.
func New(runners map[string]*faas.Runner, accelRunner, plainRunner string) (*Gateway, error) {
	return NewWithOptions(runners, accelRunner, plainRunner, serve.Options{})
}

// NewWithOptions builds a gateway whose serving engine uses the given
// worker-pool, admission, policy, and batching options. The engine shares
// the gateway's telemetry registry, so /metrics surfaces queue depth,
// drops, and batch occupancy alongside the gateway counters.
func NewWithOptions(runners map[string]*faas.Runner, accelRunner, plainRunner string, opt serve.Options) (*Gateway, error) {
	if _, ok := runners[accelRunner]; !ok {
		return nil, fmt.Errorf("gateway: unknown accelerated runner %q", accelRunner)
	}
	if _, ok := runners[plainRunner]; !ok {
		return nil, fmt.Errorf("gateway: unknown plain runner %q", plainRunner)
	}
	tel := opt.Telemetry
	if tel == nil {
		tel = sched.NewTelemetry()
		opt.Telemetry = tel
	}
	// DSCS spillover — static threshold or wait-keyed adaptive balance —
	// lands on the gateway's plain (CPU) pool unless the caller picked a
	// target explicitly.
	if (opt.SpilloverThreshold > 0 || opt.AdaptiveBalance) && opt.SpilloverTo == "" {
		opt.SpilloverTo = plainRunner
	}
	engine, err := serve.NewEngine(runners, opt)
	if err != nil {
		return nil, err
	}
	return &Gateway{
		apps:         make(map[string]*Deployment),
		engine:       engine,
		defaultAccel: accelRunner,
		defaultPlain: plainRunner,
		tel:          tel,
	}, nil
}

// Telemetry exposes the gateway's metric registry.
func (g *Gateway) Telemetry() *sched.Telemetry { return g.tel }

// Engine exposes the serving engine (diagnostics, tests).
func (g *Gateway) Engine() *serve.Engine { return g.engine }

// Close stops the serving engine's worker pools after draining their
// queues. The gateway must not be invoked afterwards.
func (g *Gateway) Close() { g.engine.Close() }

// Handler returns the HTTP API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", g.health)
	mux.HandleFunc("/system/functions", g.systemFunctions)
	mux.HandleFunc("/system/workflows", g.systemWorkflows)
	mux.HandleFunc("/function/", g.invoke)
	mux.HandleFunc("/metrics", g.metrics)
	return mux
}

func (g *Gateway) health(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// systemFunctions handles deploys (POST, YAML body) and listing (GET).
func (g *Gateway) systemFunctions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		g.deploy(w, r)
	case http.MethodGet:
		g.list(w)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) deploy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	app, err := faas.ParseApplication(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bench := workload.BySlug(app.Name)
	if bench == nil {
		http.Error(w, fmt.Sprintf("no workload data for application %q", app.Name),
			http.StatusUnprocessableEntity)
		return
	}
	g.mu.Lock()
	_, redeploy := g.apps[app.Name]
	g.apps[app.Name] = &Deployment{App: app, Benchmark: bench, YAML: string(body), At: time.Now()}
	g.mu.Unlock()
	if redeploy {
		// A redeploy may change the chain: the engine's memoized pricing
		// and latency history for this slug are stale the moment the new
		// deployment lands.
		g.engine.ForgetEstimate(app.Name)
		g.tel.Inc("gateway_redeployments_total", 1)
	}
	g.tel.Inc("gateway_deployments_total", 1)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]interface{}{
		"deployed":    app.Name,
		"functions":   len(app.Chain),
		"accelerated": len(app.AcceleratedPrefix()),
	})
}

// listEntry is one row of the deployment listing.
type listEntry struct {
	Name        string `json:"name"`
	Functions   int    `json:"functions"`
	Accelerated int    `json:"accelerated_functions"`
	Model       string `json:"model"`
	Runner      string `json:"default_runner"`
}

func (g *Gateway) list(w http.ResponseWriter) {
	g.mu.RLock()
	entries := make([]listEntry, 0, len(g.apps))
	for _, d := range g.apps {
		entries = append(entries, listEntry{
			Name:        d.App.Name,
			Functions:   len(d.App.Chain),
			Accelerated: len(d.App.AcceleratedPrefix()),
			Model:       d.Benchmark.Model.Name,
			Runner:      g.routeFor(d),
		})
	}
	g.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	writeJSON(w, entries)
}

// routeFor picks the default runner for a deployment.
func (g *Gateway) routeFor(d *Deployment) string {
	if len(d.App.AcceleratedPrefix()) > 0 {
		return g.defaultAccel
	}
	return g.defaultPlain
}

// invokeRequest is the invocation body (all fields optional).
type invokeRequest struct {
	Batch    int     `json:"batch"`
	Cold     bool    `json:"cold"`
	Quantile float64 `json:"quantile"`
}

// invokeResponse reports one invocation.
type invokeResponse struct {
	Application string  `json:"application"`
	Platform    string  `json:"platform"`
	TotalMS     float64 `json:"total_ms"`
	StackMS     float64 `json:"stack_ms"`
	RemoteIOMS  float64 `json:"remote_io_ms"`
	ComputeMS   float64 `json:"compute_ms"`
	DeviceIOMS  float64 `json:"device_io_ms"`
	DriverMS    float64 `json:"driver_ms"`
	ColdMS      float64 `json:"cold_start_ms"`
	NotifyMS    float64 `json:"notify_ms"`
	EnergyJ     float64 `json:"energy_j"`
	// Serving-engine telemetry for this request.
	QueuedMS      float64 `json:"queued_ms"`
	BatchRequests int     `json:"batch_requests"`
	BatchSize     int     `json:"batch_size"`
}

func (g *Gateway) invoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/function/")
	g.mu.RLock()
	d, ok := g.apps[name]
	g.mu.RUnlock()
	if !ok {
		g.tel.Inc("gateway_not_found_total", 1)
		http.Error(w, fmt.Sprintf("application %q not deployed", name), http.StatusNotFound)
		return
	}

	var req invokeRequest
	if r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err == nil && len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
	}

	platformName := g.routeFor(d)
	if p := r.URL.Query().Get("platform"); p != "" {
		if !g.engine.Has(p) {
			http.Error(w, fmt.Sprintf("unknown platform %q", p), http.StatusBadRequest)
			return
		}
		platformName = p
	}

	inv, err := g.engine.Submit(platformName, d.Benchmark, faas.Options{
		Batch: req.Batch, Cold: req.Cold, Quantile: req.Quantile,
	})
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		g.tel.Inc("gateway_throttled_total", 1)
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return
	case err != nil:
		g.tel.Inc("gateway_errors_total", 1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	g.tel.Inc("gateway_invocations_total", 1)
	g.tel.Inc("gateway_invocations_total{platform="+platformName+"}", 1)

	ms := func(dur time.Duration) float64 { return float64(dur) / float64(time.Millisecond) }
	res := inv.Result
	bd := res.Breakdown
	writeJSON(w, invokeResponse{
		Application:   name,
		Platform:      platformName,
		TotalMS:       ms(res.Total()),
		StackMS:       ms(bd.Stack),
		RemoteIOMS:    ms(bd.RemoteRead + bd.RemoteWrite),
		ComputeMS:     ms(bd.Compute),
		DeviceIOMS:    ms(bd.DeviceIO),
		DriverMS:      ms(bd.Driver),
		ColdMS:        ms(bd.ColdStart),
		NotifyMS:      ms(bd.Notify),
		EnergyJ:       float64(res.Energy),
		QueuedMS:      ms(inv.Queued),
		BatchRequests: inv.BatchRequests,
		BatchSize:     inv.BatchSize,
	})
}

// workflowStageJSON is one stage row of a workflow response.
type workflowStageJSON struct {
	ID       string `json:"id"`
	Platform string `json:"platform,omitempty"`
	Local    bool   `json:"local"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
}

// workflowResponse reports one settled workflow: the ledger, the
// end-to-end makespan, and the local-vs-fabric byte split.
type workflowResponse struct {
	ID          int                 `json:"id"`
	Succeeded   bool                `json:"succeeded"`
	MakespanMS  float64             `json:"makespan_ms"`
	Completed   int                 `json:"completed"`
	Dropped     int                 `json:"dropped"`
	Stranded    int                 `json:"stranded"`
	LocalStages int                 `json:"local_stages"`
	LocalBytes  int64               `json:"local_bytes"`
	FabricBytes int64               `json:"fabric_bytes"`
	Stages      []workflowStageJSON `json:"stages"`
}

// systemWorkflows admits one invocation graph (POST, spec text body in the
// offset:id=benchmark:deps format of internal/trace) and blocks until it
// settles. Malformed graphs — cycles, dangling deps, duplicate IDs — are
// HTTP 400; a stage naming an undeployed-unknown benchmark is 422.
func (g *Gateway) systemWorkflows(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := trace.ParseWorkflowSpec(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var opt faas.Options
	if q := r.URL.Query().Get("quantile"); q != "" {
		if opt.Quantile, err = strconv.ParseFloat(q, 64); err != nil {
			http.Error(w, "bad quantile: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	res, err := g.engine.SubmitWorkflow(spec, opt)
	if err != nil {
		if strings.Contains(err.Error(), "unknown benchmark") {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		g.tel.Inc("gateway_errors_total", 1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	g.tel.Inc("gateway_workflows_total", 1)
	stages := make([]workflowStageJSON, len(res.Stages))
	for i, st := range res.Stages {
		stages[i] = workflowStageJSON{
			ID: st.ID, Platform: st.Platform, Local: st.Local,
			State: st.State.String(), Error: st.Err,
		}
	}
	writeJSON(w, workflowResponse{
		ID: res.ID, Succeeded: res.Succeeded,
		MakespanMS: float64(res.Makespan) / float64(time.Millisecond),
		Completed:  res.Completed, Dropped: res.Dropped, Stranded: res.Stranded,
		LocalStages: res.LocalStages,
		LocalBytes:  int64(res.LocalBytes), FabricBytes: int64(res.FabricBytes),
		Stages: stages,
	})
}

func (g *Gateway) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, g.tel.Render())
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
