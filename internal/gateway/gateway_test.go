package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"dscs/internal/csd"
	"dscs/internal/faas"
	"dscs/internal/objstore"
	"dscs/internal/platform"
	"dscs/internal/serve"
	"dscs/internal/sim"
	"dscs/internal/ssd"
	"dscs/internal/workload"
)

// testGatewayWithOptions builds the standard six-node fixture (four plain
// SSDs, two DSCS-Drives) and a gateway with the given engine options.
func testGatewayWithOptions(t *testing.T, seed uint64, opt serve.Options) *Gateway {
	t.Helper()
	var nodes []*objstore.Node
	for i := 0; i < 4; i++ {
		d, err := ssd.New(ssd.SmartSSDClass())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("ssd-%d", i), Kind: objstore.PlainSSD, SSD: d,
		})
	}
	for i := 0; i < 2; i++ {
		d, err := csd.New(csd.Default())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, &objstore.Node{
			ID: fmt.Sprintf("dscs-%d", i), Kind: objstore.DSCSDrive, CSD: d,
		})
	}
	store, err := objstore.New(objstore.Default(), nodes, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	runners := map[string]*faas.Runner{
		"DSCS-Serverless": faas.NewRunner(store, platform.DSCS()),
		"Baseline (CPU)":  faas.NewRunner(store, platform.BaselineCPU()),
	}
	g, err := NewWithOptions(runners, "DSCS-Serverless", "Baseline (CPU)", opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func testGateway(t *testing.T) *Gateway {
	t.Helper()
	return testGatewayWithOptions(t, 17, serve.Options{})
}

func deployApp(t *testing.T, srv *httptest.Server, slug string) {
	t.Helper()
	b := workload.BySlug(slug)
	resp, err := http.Post(srv.URL+"/system/functions", "application/x-yaml",
		strings.NewReader(faas.DeploymentYAML(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("deploy status = %d", resp.StatusCode)
	}
}

func TestDeployListInvoke(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	deployApp(t, srv, "asset-damage")
	deployApp(t, srv, "chatbot")

	// List shows both with their routing.
	resp, err := http.Get(srv.URL + "/system/functions")
	if err != nil {
		t.Fatal(err)
	}
	var entries []listEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(entries) != 2 {
		t.Fatalf("listed %d apps, want 2", len(entries))
	}
	for _, e := range entries {
		if e.Accelerated != 2 || e.Runner != "DSCS-Serverless" {
			t.Errorf("entry %+v: accelerated apps must route to DSCS", e)
		}
	}

	// Invoke lands on the DSCS runner and returns a full breakdown.
	resp, err = http.Post(srv.URL+"/function/asset-damage", "application/json",
		strings.NewReader(`{"quantile":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	var inv invokeResponse
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if inv.Platform != "DSCS-Serverless" {
		t.Errorf("routed to %q", inv.Platform)
	}
	if inv.TotalMS <= 0 || inv.EnergyJ <= 0 || inv.DriverMS <= 0 {
		t.Errorf("degenerate invocation response: %+v", inv)
	}
	sum := inv.StackMS + inv.RemoteIOMS + inv.ComputeMS + inv.DeviceIOMS +
		inv.DriverMS + inv.ColdMS + inv.NotifyMS
	if diff := inv.TotalMS - sum; diff > 0.01 || diff < -0.01 {
		t.Errorf("breakdown (%.3f) does not sum to total (%.3f)", sum, inv.TotalMS)
	}
}

func TestPlatformOverride(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	deployApp(t, srv, "moderation")

	resp, err := http.Post(srv.URL+"/function/moderation?platform="+url.QueryEscape("Baseline (CPU)"),
		"application/json", strings.NewReader(`{"quantile":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	var inv invokeResponse
	json.NewDecoder(resp.Body).Decode(&inv)
	resp.Body.Close()
	if inv.Platform != "Baseline (CPU)" {
		t.Errorf("override ignored: %q", inv.Platform)
	}
	if inv.RemoteIOMS <= 0 {
		t.Error("baseline invocation must pay remote IO")
	}

	// Unknown platform is a client error.
	resp, _ = http.Post(srv.URL+"/function/moderation?platform=TPU", "application/json", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown platform status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestInvokeErrors(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// Not deployed.
	resp, _ := http.Post(srv.URL+"/function/ghost", "application/json", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing app status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Wrong method.
	resp, _ = http.Get(srv.URL + "/function/ghost")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET invoke status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad YAML deploy.
	resp, _ = http.Post(srv.URL+"/system/functions", "application/x-yaml",
		strings.NewReader("not: [valid"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad yaml status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Valid YAML but unknown workload.
	yaml := strings.Replace(faas.DeploymentYAML(workload.Chatbot()),
		"name: chatbot", "name: mystery", 1)
	resp, _ = http.Post(srv.URL+"/system/functions", "application/x-yaml",
		strings.NewReader(yaml))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown workload status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed invocation body.
	deployApp(t, srv, "chatbot")
	resp, _ = http.Post(srv.URL+"/function/chatbot", "application/json",
		strings.NewReader("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestMetricsAndHealth(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	deployApp(t, srv, "clinical")
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/function/clinical", "application/json",
			strings.NewReader(`{"quantile":0.5}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	text := string(body[:n])
	if !strings.Contains(text, "gateway_invocations_total 3") {
		t.Errorf("metrics missing invocation count:\n%s", text)
	}
	if !strings.Contains(text, "gateway_deployments_total 1") {
		t.Errorf("metrics missing deployment count:\n%s", text)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("health status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestSpilloverAndLingerObservable exercises the dscsgate tuning surface:
// with -spillover-threshold and -batch-linger set, /metrics must expose
// serve_spillover_total (spillover lands on the gateway's plain pool by
// default) and the per-platform serve_batch_occupancy gauge.
func TestSpilloverAndLingerObservable(t *testing.T) {
	g := testGatewayWithOptions(t, 29, serve.Options{
		Workers: 1, QueueDepth: 64, MaxBatch: 8,
		SpilloverThreshold: 1,
		BatchLinger:        2 * time.Millisecond,
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	deployApp(t, srv, "asset-damage")

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/function/asset-damage", "application/json",
				strings.NewReader(`{"quantile":0.5}`))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("invoke status = %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "serve_spillover_total") {
		t.Errorf("metrics missing serve_spillover_total:\n%s", text)
	}
	if !strings.Contains(text, "serve_batch_occupancy{platform=") {
		t.Errorf("metrics missing per-platform serve_batch_occupancy:\n%s", text)
	}
	if strings.Contains(text, "serve_batch_occupancy ") {
		t.Errorf("unlabeled serve_batch_occupancy gauge present:\n%s", text)
	}
	if err := g.Engine().Conservation(); err != nil {
		t.Fatal(err)
	}
}

// TestQueueDelayGaugesOnGateway is the wait-observatory acceptance check
// at the HTTP surface: the serve_queue_delay_{p50,p95,p99}{platform,class}
// gauges are live on /metrics from the first scrape (registered at engine
// construction) and hold real quantiles once traffic has been served, with
// -adaptive-balance wired through the options.
func TestQueueDelayGaugesOnGateway(t *testing.T) {
	g := testGatewayWithOptions(t, 31, serve.Options{
		Workers: 2, QueueDepth: 64,
		AdaptiveBalance: true,
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	text := metricsBody(t, srv)
	for _, gauge := range []string{
		"serve_queue_delay_p50{platform=DSCS-Serverless,class=dscs}",
		"serve_queue_delay_p95{platform=DSCS-Serverless,class=dscs}",
		"serve_queue_delay_p99{platform=DSCS-Serverless,class=dscs}",
		"serve_queue_delay_p95{platform=Baseline (CPU),class=cpu}",
	} {
		if !strings.Contains(text, gauge) {
			t.Errorf("first scrape missing %q:\n%s", gauge, text)
		}
	}
	// Adaptive balance arms both rebalancing counter families up front.
	for _, counter := range []string{"serve_spillover_total", "serve_steal_total"} {
		if !strings.Contains(text, counter) {
			t.Errorf("adaptive balance armed but %q absent from /metrics", counter)
		}
	}

	deployApp(t, srv, "asset-damage")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/function/asset-damage", "application/json",
				strings.NewReader(`{"quantile":0.5}`))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()

	// The digests behind the gauges recorded every served request exactly
	// once across the pools.
	var waits int64
	for _, key := range [][2]string{{"DSCS-Serverless", "dscs"}, {"Baseline (CPU)", "cpu"}} {
		if dg := g.Engine().WaitObservatory().Digest(key[0], key[1]); dg != nil {
			waits += dg.Count()
		}
	}
	if waits != 8 {
		t.Errorf("wait observatory recorded %d delays for 8 served requests", waits)
	}
	if err := g.Engine().Conservation(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(map[string]*faas.Runner{}, "a", "b"); err == nil {
		t.Error("missing runners must fail")
	}
}

// metricsBody scrapes /metrics and returns the exposition text.
func metricsBody(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestRedeployDropsStalePricing is the redeploy regression: the engine
// memoizes service estimates by slug, so before the fix a deploy over an
// existing name kept the old chain's pricing (and latency history)
// forever. The fixed engine re-prices a changed chain — the cache
// validates the Benchmark object, so a changed chain under the same slug
// can never inherit stale pricing — and the gateway's redeploy path calls
// Engine.ForgetEstimate, dropping the slug's memoized estimate and its
// latency digests. Both assertions fail on the pre-fix code.
func TestRedeployDropsStalePricing(t *testing.T) {
	g := testGatewayWithOptions(t, 7, serve.Options{Workers: 1})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	deployApp(t, srv, "chatbot")

	e := g.Engine()
	cpuOld, _, _ := e.ServiceEstimate(workload.BySlug("chatbot")) // memoized under the slug

	// The chain changed: the same slug now fronts a much heavier model.
	// Pre-fix, the slug-keyed cache returned cpuOld here.
	changed := *workload.BySlug("chatbot")
	changed.Model = workload.BySlug("remote-sensing").Model
	cpuNew, _, _ := e.ServiceEstimate(&changed)
	if cpuNew == cpuOld {
		t.Fatalf("changed chain kept the stale pricing %v (pre-fix behavior)", cpuNew)
	}
	if cpuNew <= cpuOld {
		t.Fatalf("heavier chain must price higher: %v -> %v", cpuOld, cpuNew)
	}

	// Redeploying over the existing name must drop the slug's latency
	// history — digests and published gauges — along with the memoized
	// estimate.
	e.Observatory().Record("chatbot", "DSCS-Serverless", 5*time.Millisecond)
	gauge := "serve_latency_p95{benchmark=chatbot,platform=DSCS-Serverless}"
	g.Telemetry().SetDuration(gauge, 5*time.Millisecond)
	deployApp(t, srv, "chatbot")
	if e.Observatory().Digest("chatbot", "DSCS-Serverless") != nil {
		t.Error("redeploy kept the old chain's latency history (pre-fix behavior)")
	}
	if body := metricsBody(t, srv); strings.Contains(body, gauge) {
		t.Error("redeploy kept the old chain's latency gauges on /metrics")
	}
	if got := g.Telemetry().Counter("gateway_redeployments_total"); got != 1 {
		t.Errorf("gateway_redeployments_total = %v, want 1", got)
	}
	// A first-time deploy is not a redeploy.
	deployApp(t, srv, "clinical")
	if got := g.Telemetry().Counter("gateway_redeployments_total"); got != 1 {
		t.Errorf("fresh deploy counted as redeploy: %v", got)
	}
}

// TestConcurrentDeployInvoke hammers the handler with 64 parallel
// deploy+invoke pairs (run under -race in CI): every request must succeed —
// the queue depth exceeds the burst, so admission control may not drop
// anything — and the aggregate telemetry must account for every invocation
// deterministically.
func TestConcurrentDeployInvoke(t *testing.T) {
	suite := workload.Suite()
	g := testGatewayWithOptions(t, 29, serve.Options{Workers: 8, QueueDepth: 256})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	const parallel = 64
	var wg sync.WaitGroup
	errs := make(chan error, 2*parallel)
	for i := 0; i < parallel; i++ {
		b := suite[i%len(suite)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Deploy (idempotent per app) then invoke, both through HTTP.
			resp, err := http.Post(srv.URL+"/system/functions", "application/x-yaml",
				strings.NewReader(faas.DeploymentYAML(b)))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("deploy %s: status %d", b.Slug, resp.StatusCode)
				return
			}
			resp, err = http.Post(srv.URL+"/function/"+b.Slug, "application/json",
				strings.NewReader(`{"quantile":0.5}`))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("invoke %s: status %d", b.Slug, resp.StatusCode)
				return
			}
			var inv invokeResponse
			if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
				errs <- err
				return
			}
			if inv.TotalMS <= 0 || inv.BatchRequests < 1 {
				errs <- fmt.Errorf("degenerate response for %s: %+v", b.Slug, inv)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	tel := g.Telemetry()
	if got := tel.Counter("gateway_invocations_total"); got != parallel {
		t.Errorf("gateway_invocations_total = %g, want %d", got, parallel)
	}
	if got := tel.Counter("gateway_deployments_total"); got != parallel {
		t.Errorf("gateway_deployments_total = %g, want %d", got, parallel)
	}
	if got := tel.Counter("serve_completed_total"); got != parallel {
		t.Errorf("serve_completed_total = %g, want %d", got, parallel)
	}
	if dropped := g.Engine().Dropped(); dropped != 0 {
		t.Errorf("%d drops below queue depth", dropped)
	}
	if got := tel.Counter("gateway_throttled_total"); got != 0 {
		t.Errorf("gateway_throttled_total = %g, want 0", got)
	}
	if err := g.Engine().Conservation(); err != nil {
		t.Error(err)
	}

	// The serving-engine metrics surface on /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, metric := range []string{"serve_queue_depth", "serve_batch_occupancy", "serve_completed_total"} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics missing %s:\n%s", metric, text)
		}
	}
}

// TestSystemWorkflows drives an invocation graph through POST
// /system/workflows: the spec text admits, every stage settles Done on a
// platform, and the response carries the ledger and makespan. Malformed
// and unknown-benchmark specs map to 400/422, and GET is refused.
func TestSystemWorkflows(t *testing.T) {
	g := testGatewayWithOptions(t, 17, serve.Options{
		Workers: 2, QueueDepth: 64,
		Execute: func(r *faas.Runner, b *workload.Benchmark, opt faas.Options) (faas.Result, error) {
			return faas.Result{}, nil
		},
	})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	spec := "0s:extract=credit-risk:;0s:s0=asset-damage:extract;0s:s1=asset-damage:extract;1ms:gather=credit-risk:s0,s1"
	resp, err := http.Post(srv.URL+"/system/workflows?quantile=0.5", "text/plain", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Succeeded  bool    `json:"succeeded"`
		MakespanMS float64 `json:"makespan_ms"`
		Completed  int     `json:"completed"`
		Stages     []struct {
			ID       string `json:"id"`
			Platform string `json:"platform"`
			State    string `json:"state"`
		} `json:"stages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded || out.Completed != 4 || out.MakespanMS <= 0 {
		t.Fatalf("workflow response %+v", out)
	}
	for _, st := range out.Stages {
		if st.State != "done" || st.Platform == "" {
			t.Fatalf("stage %+v did not settle done", st)
		}
	}
	if g.Telemetry().Counter("gateway_workflows_total") != 1 {
		t.Fatal("gateway_workflows_total never moved")
	}

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"cycle", "0s:a=credit-risk:b;0s:b=credit-risk:a", http.StatusBadRequest},
		{"empty", "", http.StatusBadRequest},
		{"unknown benchmark", "0s:a=nonesuch:", http.StatusUnprocessableEntity},
	} {
		resp, err := http.Post(srv.URL+"/system/workflows", "text/plain", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	resp, err = http.Get(srv.URL + "/system/workflows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET allowed: %d", resp.StatusCode)
	}
}
