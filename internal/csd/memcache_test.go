package csd

import (
	"testing"
	"testing/quick"
	"time"

	"dscs/internal/units"
)

func newManager(t *testing.T, capacity units.Bytes) *MemoryManager {
	t.Helper()
	d, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMemoryManager(d, capacity, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func img(name string, mb int) FunctionImage {
	return FunctionImage{Name: name, Bytes: units.Bytes(mb) * units.MB}
}

func TestFirstUseComesFromRegistry(t *testing.T) {
	m := newManager(t, 512*units.MB)
	lat, energy, src, err := m.Ensure(img("resnet", 26))
	if err != nil {
		t.Fatal(err)
	}
	if src != FromRegistry {
		t.Fatalf("first load source = %v", src)
	}
	if lat <= 0 || energy <= 0 {
		t.Fatal("first load must cost something")
	}
	if !m.Resident("resnet") {
		t.Fatal("image should now be resident")
	}
}

func TestWarmHitIsFree(t *testing.T) {
	m := newManager(t, 512*units.MB)
	m.Ensure(img("bert", 110))
	lat, energy, src, err := m.Ensure(img("bert", 110))
	if err != nil {
		t.Fatal(err)
	}
	if src != FromResident || lat != 0 || energy != 0 {
		t.Fatalf("warm hit should be free: %v %v %v", src, lat, energy)
	}
	hits, _, _, _ := m.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestEvictionToFlashAndP2PReload(t *testing.T) {
	m := newManager(t, 200*units.MB)
	m.Ensure(img("a", 110))
	m.Ensure(img("b", 80))
	// "c" forces evicting "a" (LRU).
	if _, _, _, err := m.Ensure(img("c", 90)); err != nil {
		t.Fatal(err)
	}
	if m.Resident("a") {
		t.Fatal("LRU victim still resident")
	}
	if !m.Resident("b") || !m.Resident("c") {
		t.Fatal("wrong eviction victim")
	}
	_, _, _, evictions := m.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d", evictions)
	}

	// Reloading "a" comes from flash over P2P — much cheaper than the
	// registry (the Section 5.3 claim).
	m.Ensure(img("b", 80)) // keep b warm so a's reload evicts c
	lat, _, src, err := m.Ensure(img("a", 110))
	if err != nil {
		t.Fatal(err)
	}
	if src != FromFlash {
		t.Fatalf("reload source = %v, want flash", src)
	}
	registryCost := 25*time.Millisecond + (1250 * units.MBps).TransferTime(110*units.MB)
	if lat >= registryCost {
		t.Errorf("P2P reload (%v) should beat the registry (%v)", lat, registryCost)
	}
}

func TestLRUOrdering(t *testing.T) {
	m := newManager(t, 300*units.MB)
	m.Ensure(img("a", 100))
	m.Ensure(img("b", 100))
	m.Ensure(img("c", 100))
	// Touch "a" so "b" becomes LRU.
	m.Ensure(img("a", 100))
	m.Ensure(img("d", 100)) // evicts b
	if m.Resident("b") {
		t.Fatal("LRU (b) should have been evicted")
	}
	if !m.Resident("a") || !m.Resident("c") || !m.Resident("d") {
		t.Fatal("wrong residency set")
	}
}

func TestOversizedImageRejected(t *testing.T) {
	m := newManager(t, 100*units.MB)
	if _, _, _, err := m.Ensure(img("huge", 200)); err == nil {
		t.Fatal("image above DRAM capacity must be rejected")
	}
	if _, _, _, err := m.Ensure(FunctionImage{}); err == nil {
		t.Fatal("empty image must be rejected")
	}
}

func TestManagerConstructionErrors(t *testing.T) {
	d, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMemoryManager(nil, units.MB, nil); err == nil {
		t.Error("nil drive must fail")
	}
	if _, err := NewMemoryManager(d, 0, nil); err == nil {
		t.Error("zero capacity must fail")
	}
}

func TestCapacityInvariantProperty(t *testing.T) {
	m := newManager(t, 256*units.MB)
	names := []string{"w", "x", "y", "z", "v"}
	sizes := []int{40, 70, 100, 130, 110} // fixed per name
	f := func(ops []uint8) bool {
		for _, op := range ops {
			i := int(op) % len(names)
			if _, _, _, err := m.Ensure(img(names[i], sizes[i])); err != nil {
				return false
			}
			if m.Used() > 256*units.MB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLoadSourceNames(t *testing.T) {
	for _, s := range []LoadSource{FromResident, FromFlash, FromRegistry} {
		if s.String() == "unknown" {
			t.Errorf("source %d unnamed", s)
		}
	}
}
