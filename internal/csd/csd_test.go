package csd

import (
	"testing"
	"time"

	"dscs/internal/compiler"
	"dscs/internal/model"
	"dscs/internal/power"
	"dscs/internal/units"
)

func newDrive(t *testing.T) *Drive {
	t.Helper()
	d, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDefaultFitsPowerBudget(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config must fit the 25W budget: %v", err)
	}
}

func TestBudgetRejectsOversizedDSA(t *testing.T) {
	cfg := Default()
	cfg.DSA.Rows, cfg.DSA.Cols = 1024, 1024
	cfg.DSA = cfg.DSA.WithBuffers(32 * units.MiB)
	if err := cfg.Validate(); err == nil {
		t.Error("a 1024x1024 DSA must blow the 25W drive budget")
	}
	// At 45 nm even the 128x128 design fails (the paper's node argument).
	cfg45 := Default()
	cfg45.Node = cfg45.Node.Scaled("45nm-undo", ScaleUndo())
	if err := cfg45.Validate(); err == nil {
		t.Error("45nm 128x128 DSA should exceed the shared budget")
	}
}

func TestRunBreakdown(t *testing.T) {
	d := newDrive(t)
	g := model.ResNet50()
	p, err := compiler.Compile(g, 1, d.Config().DSA, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := units.Bytes(224 * 224 * 3)
	d.SSD().HostWrite(0, in) // data arrives on the drive first
	r, err := d.Run(p, 0, in, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Driver <= 0 || r.P2PRead <= 0 || r.Compute <= 0 || r.P2PWrite <= 0 {
		t.Fatalf("incomplete breakdown: %+v", r)
	}
	if r.Total() != r.Driver+r.P2PRead+r.Compute+r.P2PWrite {
		t.Error("total must equal the sum of phases")
	}
	if r.Energy <= 0 {
		t.Error("energy must be positive")
	}
	// For ResNet-50 batch 1, compute dominates the on-drive path.
	if r.Compute < r.P2PRead {
		t.Errorf("compute %v should dominate staging %v here", r.Compute, r.P2PRead)
	}
	// The whole on-drive execution sits in the milliseconds.
	if r.Total() > 20*time.Millisecond {
		t.Errorf("on-drive execution = %v, implausibly slow", r.Total())
	}
}

func TestP2PBeatsHostMediated(t *testing.T) {
	d := newDrive(t)
	g := model.SSDMobileNetPPE()
	p, err := compiler.Compile(g, 1, d.Config().DSA, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := units.Bytes(6 * units.MB) // the PPE benchmark's high-res frame
	d.SSD().HostWrite(0, in)
	p2p, err := d.Run(p, 0, in, 100*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	host, err := d.RunHostMediated(p, 0, in, 100*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if p2p.Total() >= host.Total() {
		t.Errorf("P2P %v must beat host-mediated %v", p2p.Total(), host.Total())
	}
}

func TestAcquireRelease(t *testing.T) {
	d := newDrive(t)
	if d.Busy() {
		t.Fatal("fresh drive must be idle")
	}
	if !d.Acquire() {
		t.Fatal("first acquire must succeed")
	}
	if d.Acquire() {
		t.Fatal("second acquire must fail (run-to-completion)")
	}
	d.Release()
	if !d.Acquire() {
		t.Fatal("acquire after release must succeed")
	}
}

func TestWeightResidency(t *testing.T) {
	d := newDrive(t)
	weights := units.Bytes(25 * units.MB)
	d.SSD().HostWrite(1<<30, weights)
	lat, energy := d.LoadWeights("resnet-50", weights, 1<<30)
	if lat <= 0 || energy <= 0 {
		t.Fatalf("load weights lat=%v energy=%v", lat, energy)
	}
	if d.ResidentWeights() != "resnet-50" {
		t.Errorf("resident = %q", d.ResidentWeights())
	}
	// 25 MB over internal flash + P2P: few tens of ms at worst.
	if lat > 40*time.Millisecond {
		t.Errorf("weight load = %v, implausibly slow", lat)
	}
	eLat, eEnergy := d.EvictWeights(weights, 1<<30)
	if eLat <= 0 || eEnergy <= 0 {
		t.Fatal("evict must cost something")
	}
	if d.ResidentWeights() != "" {
		t.Error("eviction must clear residency")
	}
}

func TestValidateCatchesDriverMisconfig(t *testing.T) {
	cfg := Default()
	cfg.DriverSyscall = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero driver syscall should fail")
	}
	cfg2 := Default()
	cfg2.Budget = 0
	if err := cfg2.Validate(); err == nil {
		t.Error("zero budget should fail")
	}
}

// ScaleUndo inverts the 45->14 scaling for the budget test.
func ScaleUndo() power.ScaleFactors {
	return power.ScaleFactors{Power: 1 / 0.21, Area: 1 / 0.11}
}

func TestStorageServiceDuringDSAActivity(t *testing.T) {
	// Section 5.2: the accelerator is an optional extra capability; normal
	// storage operation continues while the DSA runs, with only a bounded
	// arbitration penalty.
	d := newDrive(t)
	d.SSD().HostWrite(0, 8*units.MB)
	idleLat, _ := d.HostReadConcurrent(0, 8*units.MB)

	if !d.Acquire() {
		t.Fatal("acquire failed")
	}
	busyLat, _ := d.HostReadConcurrent(0, 8*units.MB)
	d.Release()

	if busyLat <= idleLat {
		t.Error("sharing the channels must cost something")
	}
	ratio := float64(busyLat) / float64(idleLat)
	if ratio > 1.25 {
		t.Errorf("interference ratio = %.2f, want bounded (<1.25)", ratio)
	}
	// Writes too.
	idleW, _ := d.HostWriteConcurrent(1<<28, 4*units.MB)
	d.Acquire()
	busyW, _ := d.HostWriteConcurrent(1<<28, 4*units.MB)
	d.Release()
	if busyW <= idleW || float64(busyW)/float64(idleW) > 1.25 {
		t.Errorf("write interference out of bounds: %v vs %v", idleW, busyW)
	}
}
