// Package csd implements the DSCS-Drive: a computational storage device
// that couples the SSD controller (internal/ssd) with the in-storage DSA
// (internal/dsa) through a dedicated peer-to-peer PCIe connection, fronted
// by an OpenCL-style driver. It enforces the drive's PCIe power budget and
// exposes the execution path of the paper's Section 3.1: driver-initiated
// P2P staging, DSA execution, interrupt, and P2P write-back.
package csd

import (
	"fmt"
	"sync"
	"time"

	"dscs/internal/dsa"
	"dscs/internal/isa"
	"dscs/internal/pcie"
	"dscs/internal/power"
	"dscs/internal/ssd"
	"dscs/internal/units"
)

// Config assembles a DSCS-Drive.
type Config struct {
	SSD ssd.Config
	DSA dsa.Config

	// P2P is the internal link between the flash controller and the DSA.
	P2P pcie.Link

	// Driver costs: one ioctl-class syscall to initiate a P2P transfer,
	// the OpenCL command-queue enqueue, and the completion interrupt from
	// the DSA to the host CPU.
	DriverSyscall time.Duration
	Enqueue       time.Duration
	Interrupt     time.Duration

	// Budget is the drive's total power envelope (PCIe slot: 25 W).
	Budget units.Power

	// Node is the process the DSA is built in (14 nm for the ASIC;
	// energy scales accordingly).
	Node power.TechNode
}

// Default returns the paper's deployed configuration: a SmartSSD-class
// drive with the DSE-selected 128x128 DSA at 14 nm under the 25 W budget.
func Default() Config {
	return Config{
		SSD:           ssd.SmartSSDClass(),
		DSA:           dsa.PaperOptimal(),
		P2P:           pcie.Gen3x4(),
		DriverSyscall: 3 * time.Microsecond,
		Enqueue:       900 * time.Microsecond, // OpenCL command-queue on the storage node
		Interrupt:     30 * time.Microsecond,
		Budget:        25,
		Node:          power.Node14nm,
	}
}

// Validate checks the assembly, including the power budget: the DSA's peak
// power plus the active flash subsystem must fit the PCIe envelope.
func (c Config) Validate() error {
	if err := c.SSD.Validate(); err != nil {
		return err
	}
	if err := c.DSA.Validate(); err != nil {
		return err
	}
	if err := c.P2P.Validate(); err != nil {
		return err
	}
	if c.DriverSyscall <= 0 || c.Enqueue < 0 || c.Interrupt < 0 {
		return fmt.Errorf("csd: non-positive driver costs")
	}
	if c.Budget <= 0 {
		return fmt.Errorf("csd: non-positive power budget")
	}
	peak := power.PeakPower(c.Node, c.DSA.PEs(), c.DSA.TotalBuf(), c.DSA.Freq, c.DSA.DRAM)
	if total := peak + c.SSD.ActivePower; total > c.Budget {
		return fmt.Errorf("csd: DSA peak %v + flash %v exceeds %v budget",
			peak, c.SSD.ActivePower, c.Budget)
	}
	return nil
}

// Drive is one DSCS-Drive instance. Safe for concurrent use: the embedded
// SSD serializes its own command path, and the drive-level occupancy and
// keep-warm state sit behind one lock.
type Drive struct {
	cfg Config
	ssd *ssd.Drive
	sim *dsa.Simulator

	mu   sync.Mutex
	busy bool
	// residentWeights tracks which function's weights are loaded in the
	// DSA's DRAM (the keep-warm state of Section 5.3).
	residentWeights string
}

// New builds and validates a drive.
func New(cfg Config) (*Drive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	base, err := ssd.New(cfg.SSD)
	if err != nil {
		return nil, err
	}
	sim, err := dsa.New(cfg.DSA)
	if err != nil {
		return nil, err
	}
	return &Drive{cfg: cfg, ssd: base, sim: sim}, nil
}

// Config returns the drive's configuration.
func (d *Drive) Config() Config { return d.cfg }

// SSD exposes the conventional storage personality: a DSCS-Drive still
// serves standard reads and writes (Section 5.2, storage utilization).
func (d *Drive) SSD() *ssd.Drive { return d.ssd }

// Busy reports whether a function currently occupies the DSA
// (run-to-completion, no preemption — Section 5.3).
func (d *Drive) Busy() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busy
}

// Acquire marks the DSA busy; it reports false if already occupied.
func (d *Drive) Acquire() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.busy {
		return false
	}
	d.busy = true
	return true
}

// Release frees the DSA.
func (d *Drive) Release() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.busy = false
}

// ResidentWeights reports which function's weights are warm in DSA DRAM.
func (d *Drive) ResidentWeights() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.residentWeights
}

// ExecResult breaks down one in-storage function execution.
type ExecResult struct {
	Driver   time.Duration // syscalls + enqueue + interrupt
	P2PRead  time.Duration // flash -> DSA DRAM staging
	Compute  time.Duration // DSA execution (includes its DRAM traffic)
	P2PWrite time.Duration // results DSA DRAM -> flash

	Energy units.Energy
	Stats  dsa.Stats
}

// Total is the end-to-end device latency.
func (r ExecResult) Total() time.Duration {
	return r.Driver + r.P2PRead + r.Compute + r.P2PWrite
}

// LoadWeights stages a function's weights (or container image contents)
// from flash into DSA DRAM over the P2P path, returning the latency and
// energy. This is the cold-start path; see faas for the keep-warm policy.
func (d *Drive) LoadWeights(fn string, bytes units.Bytes, offset int64) (time.Duration, units.Energy) {
	readLat, readEnergy := d.ssd.InternalRead(offset, bytes)
	dma := pcie.DMAEngine{Link: d.cfg.P2P}
	xferLat, xferEnergy := dma.Transfer(bytes)
	d.mu.Lock()
	d.residentWeights = fn
	d.mu.Unlock()
	return d.cfg.DriverSyscall + readLat + xferLat, readEnergy + xferEnergy
}

// EvictWeights offloads the resident function image to flash over P2P
// (Section 5.3 cold-start mitigation) and returns the cost.
func (d *Drive) EvictWeights(bytes units.Bytes, offset int64) (time.Duration, units.Energy) {
	dma := pcie.DMAEngine{Link: d.cfg.P2P}
	xferLat, xferEnergy := dma.Transfer(bytes)
	writeLat, writeEnergy := d.ssd.InternalWrite(offset, bytes)
	d.mu.Lock()
	d.residentWeights = ""
	d.mu.Unlock()
	return xferLat + writeLat, xferEnergy + writeEnergy
}

// RunStaged executes the drive-side path around an already-evaluated
// computation: driver initiation, P2P staging of the input, the provided
// compute latency/energy, interrupt, and P2P write-back of the results.
// The higher-level runtime uses this with platform-evaluated compute.
func (d *Drive) RunStaged(compute time.Duration, computeEnergy units.Energy,
	inputOffset int64, inputBytes, outputBytes units.Bytes) ExecResult {
	var r ExecResult

	// 1. Driver initiates the P2P transfer: one syscall, bypassing the
	// host's storage software stack, plus the OpenCL enqueue.
	r.Driver = d.cfg.DriverSyscall + d.cfg.Enqueue

	// 2. P2P staging: flash internal read + P2P DMA into DSA DRAM.
	readLat, readEnergy := d.ssd.InternalRead(inputOffset, inputBytes)
	dma := pcie.DMAEngine{Link: d.cfg.P2P}
	inXfer, inXferEnergy := dma.Transfer(inputBytes)
	r.P2PRead = readLat + inXfer

	// 3. The computation itself.
	r.Compute = compute

	// 4. Completion interrupt, then P2P write-back of the results.
	r.Driver += d.cfg.Interrupt
	outXfer, outXferEnergy := dma.Transfer(outputBytes)
	writeLat, writeEnergy := d.ssd.InternalWrite(inputOffset, outputBytes)
	r.P2PWrite = outXfer + writeLat

	r.Energy = readEnergy + inXferEnergy + computeEnergy + outXferEnergy + writeEnergy
	return r
}

// Run executes a compiled program against data resident on this drive.
// inputBytes are staged flash->DSA over P2P; outputBytes are written back
// the same way after the completion interrupt.
func (d *Drive) Run(p *isa.Program, inputOffset int64, inputBytes, outputBytes units.Bytes) (ExecResult, error) {
	st, err := d.sim.Run(p)
	if err != nil {
		return ExecResult{}, err
	}
	dsaEnergy, _ := d.sim.Energy(st, d.cfg.Node)
	r := d.RunStaged(st.Latency(d.cfg.DSA.Freq), dsaEnergy, inputOffset, inputBytes, outputBytes)
	r.Stats = st
	return r, nil
}

// RunHostMediated is the ablation path: data detours through the host
// (flash -> host DRAM -> DSA) instead of the dedicated P2P connection,
// paying the host link twice plus kernel I/O overheads.
func (d *Drive) RunHostMediated(p *isa.Program, inputOffset int64, inputBytes, outputBytes units.Bytes) (ExecResult, error) {
	var r ExecResult
	const hostSyscalls = 4 // read, write to device, completion, writeback
	r.Driver = time.Duration(hostSyscalls)*d.cfg.DriverSyscall + d.cfg.Enqueue + d.cfg.Interrupt

	readLat, readEnergy := d.ssd.HostRead(inputOffset, inputBytes)
	toDev := d.cfg.SSD.HostLink.TransferTime(inputBytes)
	r.P2PRead = readLat + toDev

	st, err := d.sim.Run(p)
	if err != nil {
		return ExecResult{}, err
	}
	r.Stats = st
	r.Compute = st.Latency(d.cfg.DSA.Freq)
	dsaEnergy, _ := d.sim.Energy(st, d.cfg.Node)

	fromDev := d.cfg.SSD.HostLink.TransferTime(outputBytes)
	writeLat, writeEnergy := d.ssd.HostWrite(inputOffset, outputBytes)
	r.P2PWrite = fromDev + writeLat

	r.Energy = readEnergy + dsaEnergy + writeEnergy +
		2*d.cfg.SSD.HostLink.TransferEnergy(inputBytes+outputBytes)
	return r, nil
}

// ArbitrationPenalty is the fractional slowdown conventional host IO sees
// while the DSA's P2P traffic shares the drive's internal channels. The
// PCIe switch arbitrates between the two clients (Section 5.2), so normal
// storage service continues with only a bounded penalty.
const ArbitrationPenalty = 0.12

// HostReadConcurrent serves a conventional host read while the DSA may be
// active: when the drive is busy, the flash channels and switch are shared
// and the read pays the arbitration penalty — storage functionality is
// preserved (Section 5.2's storage-utilization argument), just derated.
func (d *Drive) HostReadConcurrent(offset int64, n units.Bytes) (time.Duration, units.Energy) {
	lat, energy := d.ssd.HostRead(offset, n)
	if d.Busy() {
		lat = lat + time.Duration(float64(lat)*ArbitrationPenalty)
	}
	return lat, energy
}

// HostWriteConcurrent is the write-side analogue.
func (d *Drive) HostWriteConcurrent(offset int64, n units.Bytes) (time.Duration, units.Energy) {
	lat, energy := d.ssd.HostWrite(offset, n)
	if d.Busy() {
		lat = lat + time.Duration(float64(lat)*ArbitrationPenalty)
	}
	return lat, energy
}
