// memcache.go implements the DSA's function-memory manager (Section 5.3):
// function images (weights + executable) stay resident in the DSA's DRAM
// between invocations; when another function needs the space, the old image
// is offloaded to flash over the P2P interconnect instead of being dropped,
// so the next invocation reloads it via P2P instead of re-fetching it from
// the serverless framework's registry over the network.
package csd

import (
	"fmt"
	"time"

	"dscs/internal/units"
)

// FunctionImage is one function's resident footprint.
type FunctionImage struct {
	Name  string
	Bytes units.Bytes
}

// LoadSource says where an Ensure call found the image.
type LoadSource int

// Load sources, cheapest first.
const (
	FromResident LoadSource = iota // warm: already in DSA DRAM
	FromFlash                      // evicted earlier: P2P reload
	FromRegistry                   // first use: network pull
)

// String names the source.
func (s LoadSource) String() string {
	switch s {
	case FromResident:
		return "resident"
	case FromFlash:
		return "flash-p2p"
	case FromRegistry:
		return "registry"
	}
	return "unknown"
}

// MemoryManager tracks residency in the DSA's DRAM with LRU eviction to
// flash. Not safe for concurrent use; the drive serializes function
// execution anyway (run-to-completion).
type MemoryManager struct {
	drive    *Drive
	capacity units.Bytes
	// registryPull prices a first-time image fetch over the network.
	registryPull func(units.Bytes) time.Duration

	resident map[string]*residentEntry
	order    []string // LRU order: front = least recently used
	used     units.Bytes
	// backing holds every known image's flash copy (weights are immutable,
	// so the first load persists a backing copy and eviction is free).
	backing map[string]int64
	nextOff int64

	hits, flashLoads, registryLoads, evictions int
}

type residentEntry struct {
	img FunctionImage
}

// NewMemoryManager sizes the manager to the DSA DRAM capacity.
func NewMemoryManager(drive *Drive, capacity units.Bytes,
	registryPull func(units.Bytes) time.Duration) (*MemoryManager, error) {
	if drive == nil {
		return nil, fmt.Errorf("csd: nil drive")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("csd: non-positive DRAM capacity")
	}
	if registryPull == nil {
		registryPull = func(b units.Bytes) time.Duration {
			// Default: a 1.25 GB/s registry path with a fixed handshake.
			return 25*time.Millisecond + (1250 * units.MBps).TransferTime(b)
		}
	}
	return &MemoryManager{
		drive:        drive,
		capacity:     capacity,
		registryPull: registryPull,
		resident:     make(map[string]*residentEntry),
		backing:      make(map[string]int64),
		nextOff:      weightRegionBase,
	}, nil
}

// weightRegionBase is the drive-local region for offloaded images.
const weightRegionBase = int64(1) << 44

// touch moves a function to the most-recently-used position.
func (m *MemoryManager) touch(name string) {
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.order = append(m.order, name)
}

// Ensure makes an image resident, returning the latency, energy, and where
// the image came from.
func (m *MemoryManager) Ensure(img FunctionImage) (time.Duration, units.Energy, LoadSource, error) {
	if img.Name == "" || img.Bytes <= 0 {
		return 0, 0, FromRegistry, fmt.Errorf("csd: invalid image %+v", img)
	}
	if img.Bytes > m.capacity {
		return 0, 0, FromRegistry, fmt.Errorf(
			"csd: image %q (%v) exceeds DSA DRAM (%v)", img.Name, img.Bytes, m.capacity)
	}
	if _, ok := m.resident[img.Name]; ok {
		m.hits++
		m.touch(img.Name)
		return 0, 0, FromResident, nil
	}

	// Make room first (evictions offload to flash over P2P).
	var lat time.Duration
	var energy units.Energy
	for m.used+img.Bytes > m.capacity {
		evLat, evEnergy, err := m.evictLRU()
		if err != nil {
			return lat, energy, FromRegistry, err
		}
		lat += evLat
		energy += evEnergy
	}

	src := FromRegistry
	if off, known := m.backing[img.Name]; known {
		// P2P reload from the flash backing copy: the Section 5.3 fast
		// path, replacing a network fetch with a device-local transfer.
		ldLat, ldEnergy := m.drive.LoadWeights(img.Name, img.Bytes, off)
		lat += ldLat
		energy += ldEnergy
		m.flashLoads++
		src = FromFlash
	} else {
		// First use: pull over the network and stage into DSA DRAM. The
		// image is immutable, so a backing copy is persisted to flash off
		// the critical path (energy charged, latency hidden).
		lat += m.registryPull(img.Bytes)
		off := m.alloc(img.Bytes)
		stage, stageEnergy := m.drive.LoadWeights(img.Name, img.Bytes, off)
		_, persistEnergy := m.drive.SSD().InternalWrite(off, img.Bytes)
		lat += stage
		energy += stageEnergy + persistEnergy
		m.backing[img.Name] = off
		m.registryLoads++
	}

	m.resident[img.Name] = &residentEntry{img: img}
	m.used += img.Bytes
	m.touch(img.Name)
	return lat, energy, src, nil
}

// alloc reserves a flash region for an image's backing copy.
func (m *MemoryManager) alloc(b units.Bytes) int64 {
	off := m.nextOff
	m.nextOff += int64(b) + 1<<20
	return off
}

// evictLRU drops the least-recently-used image from DSA DRAM. Its backing
// copy already lives in flash (weights are immutable), so eviction is a
// metadata operation; images that somehow lack a backing copy pay the
// offload over P2P (the paper's general case).
func (m *MemoryManager) evictLRU() (time.Duration, units.Energy, error) {
	if len(m.order) == 0 {
		return 0, 0, fmt.Errorf("csd: nothing to evict")
	}
	victim := m.order[0]
	m.order = m.order[1:]
	entry := m.resident[victim]
	delete(m.resident, victim)
	m.used -= entry.img.Bytes
	m.evictions++
	if _, known := m.backing[victim]; known {
		return 0, 0, nil
	}
	off := m.alloc(entry.img.Bytes)
	lat, energy := m.drive.EvictWeights(entry.img.Bytes, off)
	m.backing[victim] = off
	return lat, energy, nil
}

// Resident reports whether a function is warm in DSA DRAM.
func (m *MemoryManager) Resident(name string) bool {
	_, ok := m.resident[name]
	return ok
}

// Used reports the occupied DRAM.
func (m *MemoryManager) Used() units.Bytes { return m.used }

// Stats reports hit/load/eviction counters.
func (m *MemoryManager) Stats() (hits, flashLoads, registryLoads, evictions int) {
	return m.hits, m.flashLoads, m.registryLoads, m.evictions
}
