package pcie

import (
	"testing"
	"testing/quick"
	"time"

	"dscs/internal/units"
)

func TestLaneBandwidths(t *testing.T) {
	// Gen3 x4 (SmartSSD) ~3.5 GB/s effective at 0.9 efficiency.
	bw := Gen3x4().Bandwidth()
	if bw < 3.4*units.GBps || bw > 3.6*units.GBps {
		t.Errorf("gen3 x4 bw = %v, want ~3.5GB/s", bw)
	}
	// Gen3 x16 (GPU) ~14 GB/s.
	bw16 := Gen3x16().Bandwidth()
	if bw16 < 13*units.GBps || bw16 > 15*units.GBps {
		t.Errorf("gen3 x16 bw = %v, want ~14GB/s", bw16)
	}
	if bw16 != 4*bw {
		t.Errorf("x16 should be 4x the x4 bandwidth: %v vs %v", bw16, bw)
	}
}

func TestTransferTime(t *testing.T) {
	l := Gen3x4()
	// Propagation floor on tiny transfers.
	if d := l.TransferTime(1); d < 500*time.Nanosecond {
		t.Errorf("tiny transfer %v below propagation floor", d)
	}
	// 35.46 MB at ~3.546 GB/s ~= 10 ms.
	d := l.TransferTime(35 * units.MB)
	if d < 9*time.Millisecond || d > 11*time.Millisecond {
		t.Errorf("35MB transfer = %v, want ~10ms", d)
	}
}

func TestTransferMonotonicProperty(t *testing.T) {
	l := Gen3x4()
	f := func(a, b uint32) bool {
		x, y := units.Bytes(a), units.Bytes(b)
		if x > y {
			x, y = y, x
		}
		return l.TransferTime(x) <= l.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferEnergy(t *testing.T) {
	l := Gen3x4()
	e := l.TransferEnergy(units.MB)
	// 1 MB * 40 pJ/B = 40 uJ.
	if e < 39*units.MicroJoule || e > 41*units.MicroJoule {
		t.Errorf("1MB energy = %v, want ~40uJ", e)
	}
	if l.TransferEnergy(0) != 0 || l.TransferEnergy(-5) != 0 {
		t.Error("non-positive transfers are free")
	}
}

func TestValidate(t *testing.T) {
	good := []Link{Gen3x4(), Gen3x16(), {Gen: 4, Lanes: 8}, {Gen: 5, Lanes: 1}}
	for _, l := range good {
		if err := l.Validate(); err != nil {
			t.Errorf("%v should validate: %v", l, err)
		}
	}
	bad := []Link{{Gen: 0, Lanes: 4}, {Gen: 3, Lanes: 3}, {Gen: 6, Lanes: 4},
		{Gen: 3, Lanes: 4, Efficiency: 1.5}}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("%v should be rejected", l)
		}
	}
}

func TestDMAEngine(t *testing.T) {
	d := DMAEngine{Link: Gen3x4()}
	lat, e := d.Transfer(units.MB)
	direct := Gen3x4().TransferTime(units.MB)
	if lat != time.Microsecond+direct {
		t.Errorf("DMA latency = %v, want setup + %v", lat, direct)
	}
	if e != Gen3x4().TransferEnergy(units.MB) {
		t.Errorf("DMA energy = %v", e)
	}
	// Empty transfer still pays the descriptor setup.
	lat0, e0 := d.Transfer(0)
	if lat0 != time.Microsecond || e0 != 0 {
		t.Errorf("empty DMA = %v/%v", lat0, e0)
	}
	custom := DMAEngine{Link: Gen3x4(), Setup: 5 * time.Microsecond}
	lat5, _ := custom.Transfer(0)
	if lat5 != 5*time.Microsecond {
		t.Errorf("custom setup = %v", lat5)
	}
}

func TestString(t *testing.T) {
	if s := Gen3x4().String(); s != "PCIe3 x4" {
		t.Errorf("link string = %q", s)
	}
}
