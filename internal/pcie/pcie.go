// Package pcie models PCIe links and DMA transfers: per-generation lane
// bandwidth, protocol efficiency, propagation latency, and transfer energy.
// Both the drive's host interface and the internal peer-to-peer connection
// between the flash controller and the DSA are instances of Link.
package pcie

import (
	"fmt"
	"time"

	"dscs/internal/power"
	"dscs/internal/units"
)

// Link is a PCIe connection with a generation and lane count.
type Link struct {
	Gen   int
	Lanes int
	// Efficiency derates raw bandwidth for TLP/DLLP overhead (0..1];
	// zero selects the default 0.9.
	Efficiency float64
	// Propagation is the one-way link latency; zero selects 500 ns.
	Propagation time.Duration
}

// perLaneRaw returns the raw per-lane bandwidth of a generation.
func perLaneRaw(gen int) units.Bandwidth {
	switch gen {
	case 1:
		return 0.25 * units.GBps
	case 2:
		return 0.5 * units.GBps
	case 3:
		return 0.985 * units.GBps
	case 4:
		return 1.969 * units.GBps
	case 5:
		return 3.938 * units.GBps
	}
	return 0
}

// Validate rejects unknown generations and lane counts.
func (l Link) Validate() error {
	if perLaneRaw(l.Gen) == 0 {
		return fmt.Errorf("pcie: unknown generation %d", l.Gen)
	}
	switch l.Lanes {
	case 1, 2, 4, 8, 16:
	default:
		return fmt.Errorf("pcie: invalid lane count %d", l.Lanes)
	}
	if l.Efficiency < 0 || l.Efficiency > 1 {
		return fmt.Errorf("pcie: efficiency %v out of range", l.Efficiency)
	}
	return nil
}

func (l Link) efficiency() float64 {
	if l.Efficiency == 0 {
		return 0.9
	}
	return l.Efficiency
}

func (l Link) propagation() time.Duration {
	if l.Propagation == 0 {
		return 500 * time.Nanosecond
	}
	return l.Propagation
}

// Bandwidth returns the effective payload bandwidth.
func (l Link) Bandwidth() units.Bandwidth {
	return perLaneRaw(l.Gen) * units.Bandwidth(float64(l.Lanes)*l.efficiency())
}

// TransferTime returns the time to move n bytes across the link.
func (l Link) TransferTime(n units.Bytes) time.Duration {
	return l.propagation() + l.Bandwidth().TransferTime(n)
}

// TransferEnergy returns the link energy to move n bytes.
func (l Link) TransferEnergy(n units.Bytes) units.Energy {
	if n <= 0 {
		return 0
	}
	return units.Energy(float64(n)) * power.PCIeEnergyPerByte
}

// String renders the link, e.g. "PCIe3 x4".
func (l Link) String() string { return fmt.Sprintf("PCIe%d x%d", l.Gen, l.Lanes) }

// Gen3x4 is the SmartSSD-class host interface.
func Gen3x4() Link { return Link{Gen: 3, Lanes: 4} }

// Gen3x16 is the GPU-class host interface.
func Gen3x16() Link { return Link{Gen: 3, Lanes: 16} }

// DMAEngine issues descriptor-based transfers over a link with a fixed
// per-descriptor setup cost (doorbell write + descriptor fetch).
type DMAEngine struct {
	Link  Link
	Setup time.Duration // zero selects 1 us
}

func (d DMAEngine) setup() time.Duration {
	if d.Setup == 0 {
		return time.Microsecond
	}
	return d.Setup
}

// Transfer returns the latency and energy of one DMA of n bytes.
func (d DMAEngine) Transfer(n units.Bytes) (time.Duration, units.Energy) {
	if n <= 0 {
		return d.setup(), 0
	}
	return d.setup() + d.Link.TransferTime(n), d.Link.TransferEnergy(n)
}
