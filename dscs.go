// Package dscs is the public API of the DSCS-Serverless reproduction — an
// execution model for serverless computing that integrates a small
// domain-specific accelerator (DSA) inside computational storage drives to
// eliminate the disaggregated-storage data movement that otherwise caps the
// benefit of acceleration (Mahapatra et al., ASPLOS 2024).
//
// The package surfaces four layers:
//
//   - The benchmark suite and model zoo (Table 1): Suite, Models.
//   - The accelerator toolchain: PaperDSA, Compile, Simulate, and the
//     design-space exploration (ExploreDesignSpace) behind Figures 7-8.
//   - The serverless system: NewEnvironment wires storage nodes,
//     DSCS-Drives, the object store, and one invocation runner per
//     evaluated platform; Runner.Invoke returns end-to-end latency
//     breakdowns and system energy.
//   - The evaluation: Experiments lists one reproducible runner per table
//     and figure in the paper; RunExperiment executes one by id.
//
// Everything is deterministic for a fixed seed and uses only the standard
// library.
package dscs

import (
	"net/http"

	"dscs/internal/compiler"
	"dscs/internal/dsa"
	"dscs/internal/dse"
	"dscs/internal/experiments"
	"dscs/internal/faas"
	"dscs/internal/gateway"
	"dscs/internal/isa"
	"dscs/internal/model"
	"dscs/internal/platform"
	"dscs/internal/power"
	"dscs/internal/serve"
	"dscs/internal/units"
	"dscs/internal/workload"
)

// Core system types re-exported for downstream use.
type (
	// Environment is a fully wired single-rack setup: object store,
	// DSCS-Drives, and one runner per Table 2 platform.
	Environment = experiments.Environment
	// Experiment is one reproducible table/figure runner.
	Experiment = experiments.Spec
	// ExperimentResult carries the printable table and named findings.
	ExperimentResult = experiments.Result

	// Benchmark is one Table 1 application (three-function chain).
	Benchmark = workload.Benchmark
	// Runner invokes applications on one platform.
	Runner = faas.Runner
	// InvokeOptions tune an invocation (batch, cold start, tail quantile).
	InvokeOptions = faas.Options
	// InvokeResult is an invocation's latency breakdown and energy.
	InvokeResult = faas.Result

	// Model is a neural-network graph from the zoo.
	Model = model.Graph
	// DSAConfig is one accelerator design point.
	DSAConfig = dsa.Config
	// DSAStats is a cycle-level execution summary.
	DSAStats = dsa.Stats
	// Program is a compiled DSA executable.
	Program = isa.Program
	// DesignPoint is one evaluated configuration in the design space.
	DesignPoint = dse.Point
	// Platform is one Table 2 compute platform.
	Platform = platform.Compute

	// Server is the concurrent serving engine: per-platform worker pools,
	// bounded-queue admission control with pluggable scheduling policies,
	// and same-benchmark request batching.
	Server = serve.Engine
	// ServeOptions tune the serving engine (workers, queue depth, policy,
	// batching and its linger deadline, DSCS-to-CPU spillover).
	ServeOptions = serve.Options
	// ServedInvocation is one engine-served request with its queueing and
	// batching telemetry.
	ServedInvocation = serve.Invocation
	// Gateway is the OpenFaaS-style HTTP front end over the serving
	// engine; call Close to stop its worker pools.
	Gateway = gateway.Gateway
)

// NewEnvironment builds the default evaluation environment with the given
// random seed (the paper's setup: six storage nodes, two DSCS-Drives,
// three-way replication, seven platforms).
func NewEnvironment(seed uint64) (*Environment, error) {
	return experiments.NewEnvironment(seed)
}

// Suite returns the eight Table 1 benchmarks.
func Suite() []*Benchmark { return workload.Suite() }

// BenchmarkBySlug returns one benchmark by its machine name, or nil.
func BenchmarkBySlug(slug string) *Benchmark { return workload.BySlug(slug) }

// Models returns the zoo behind the suite, keyed by architecture name.
func Models() []*Model {
	return []*Model{
		model.LogisticRegressionCredit(4096), model.ResNet50(),
		model.SSDMobileNetPPE(), model.BERTBaseChatbot(),
		model.MarianTranslation(), model.InceptionV3Clinical(),
		model.ResNet18Moderation(), model.ViTRemoteSensing(),
	}
}

// Platforms returns the Table 2 lineup.
func Platforms() []Platform { return platform.All() }

// PaperDSA returns the design point the paper's DSE selects: a 128x128
// systolic array with 4 MB of on-chip buffers on DDR5 at 1 GHz.
func PaperDSA() DSAConfig { return dsa.PaperOptimal() }

// Compile lowers a model onto a DSA design point at the given batch size:
// operator fusion, buffer-constrained tiling, and dataflow selection.
func Compile(g *Model, batch int, cfg DSAConfig) (*Program, error) {
	return compiler.Compile(g, batch, cfg, compiler.Options{})
}

// Simulate executes a compiled program on the cycle-level DSA simulator and
// returns its statistics; use DSAConfig.Freq to convert cycles to time.
func Simulate(p *Program, cfg DSAConfig) (DSAStats, error) {
	sim, err := dsa.New(cfg)
	if err != nil {
		return DSAStats{}, err
	}
	return sim.Run(p)
}

// DSAEnergy estimates the 14 nm energy and average power of an execution.
func DSAEnergy(st DSAStats, cfg DSAConfig) (units.Energy, units.Power) {
	sim, err := dsa.New(cfg)
	if err != nil {
		return 0, 0
	}
	return sim.Energy(st, power.Node14nm)
}

// ExploreDesignSpace runs the paper's full Section 4.2 exploration (more
// than 650 configurations) and returns every evaluated point; use
// ParetoPower/ParetoArea to extract the frontiers.
func ExploreDesignSpace() ([]DesignPoint, error) {
	return dse.Explore(dse.PaperSpace(), power.Node45nm)
}

// ParetoPower extracts the power-performance frontier (Figure 7).
func ParetoPower(points []DesignPoint) []DesignPoint { return dse.ParetoPower(points) }

// ParetoArea extracts the area-performance frontier (Figure 8).
func ParetoArea(points []DesignPoint) []DesignPoint { return dse.ParetoArea(points) }

// OptimalDesign applies the paper's selection rule: feasible within the
// drive power budget and on both frontiers.
func OptimalDesign(points []DesignPoint) (DesignPoint, bool) { return dse.Optimal(points) }

// Experiments returns every table/figure reproduction in the paper's order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes one experiment by id ("table1", "fig3", ... "fig17").
func RunExperiment(id string, env *Environment) (*ExperimentResult, error) {
	spec, ok := experiments.ByID(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return spec.Run(env)
}

// DeploymentYAML renders the extended OpenFaaS-style deployment file for a
// benchmark, including the in-storage acceleration hints.
func DeploymentYAML(b *Benchmark) string { return faas.DeploymentYAML(b) }

// NewServer builds the concurrent serving engine over an environment's
// runners — one worker pool per Table 2 platform. Zero-valued options get
// the defaults (4 workers/platform, 256-deep queues, FCFS, batch 8).
func NewServer(env *Environment, opt ServeOptions) (*Server, error) {
	return serve.NewEngine(env.Runners, opt)
}

// SchedulingPolicies lists the accepted ServeOptions.PolicyName values.
func SchedulingPolicies() []string { return serve.PolicyNames() }

// NewGateway builds the OpenFaaS-style HTTP front end over an
// environment's runners: POST /system/functions deploys a YAML application,
// POST /function/<name> invokes it through the serving engine (routed to
// DSCS when the chain carries acceleration hints, HTTP 429 when admission
// control rejects), GET /metrics scrapes telemetry including queue depth,
// drops, and batch occupancy. Call Close when done to stop the engine's
// worker pools.
func NewGateway(env *Environment, opt ServeOptions) (*Gateway, error) {
	return gateway.NewWithOptions(env.Runners,
		platform.DSCS().Name(), platform.BaselineCPU().Name(), opt)
}

// NewGatewayHandler is NewGateway for callers that only need the handler
// and keep it for the process lifetime; the underlying engine's worker
// pools cannot be stopped through the returned handler — use NewGateway
// (and its Close) when the gateway's lifetime is shorter than the
// process's.
func NewGatewayHandler(env *Environment) (http.Handler, error) {
	gw, err := NewGateway(env, ServeOptions{})
	if err != nil {
		return nil, err
	}
	return gw.Handler(), nil
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "dscs: unknown experiment " + string(e) + " (try table1..table2, fig3..fig17)"
}
