// Batchsweep: reproduce the Figure 14 mechanism interactively. The DSA
// keeps a weight panel resident and reuses it across the whole batch, so
// weight-heavy language models gain dramatically from batching while the
// baseline's cost grows linearly. This example sweeps batch sizes for the
// chatbot (BERT) and an image pipeline, printing per-item latencies.
package main

import (
	"fmt"
	"log"
	"time"

	"dscs"
)

func main() {
	env, err := dscs.NewEnvironment(3)
	if err != nil {
		log.Fatal(err)
	}

	for _, slug := range []string{"chatbot", "moderation"} {
		app := dscs.BenchmarkBySlug(slug)
		fmt.Printf("%s (%s)\n", app.Name, app.Model.String())
		fmt.Printf("%-7s %-16s %-16s %-10s\n",
			"batch", "baseline/item", "dscs/item", "speedup")
		for _, batch := range []int{1, 4, 16, 64} {
			opt := dscs.InvokeOptions{Batch: batch, Quantile: 0.5}
			base, err := env.Baseline().Invoke(app, opt)
			if err != nil {
				log.Fatal(err)
			}
			accel, err := env.DSCS().Invoke(app, opt)
			if err != nil {
				log.Fatal(err)
			}
			perBase := base.Total() / time.Duration(batch)
			perAccel := accel.Total() / time.Duration(batch)
			fmt.Printf("%-7d %-16v %-16v %-10.2f\n",
				batch, perBase.Round(time.Microsecond), perAccel.Round(time.Microsecond),
				base.Total().Seconds()/accel.Total().Seconds())
		}
		fmt.Println()
	}

	fmt.Println("The language model's DSA time barely grows with batch (weights")
	fmt.Println("stream once), so its speedup explodes; the CNN's gain is steadier.")
}
