// Quickstart: build the evaluation environment, run one serverless
// application on the CPU baseline and on DSCS-Serverless, and print the
// latency breakdowns side by side — the paper's core claim in ~40 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"dscs"
)

func main() {
	env, err := dscs.NewEnvironment(1)
	if err != nil {
		log.Fatal(err)
	}

	app := dscs.BenchmarkBySlug("asset-damage")
	fmt.Printf("Application: %s — %s\n", app.Name, app.Description)
	fmt.Printf("Model: %s\n\n", app.Model.String())

	opt := dscs.InvokeOptions{Quantile: 0.5} // median network conditions
	base, err := env.Baseline().Invoke(app, opt)
	if err != nil {
		log.Fatal(err)
	}
	accel, err := env.DSCS().Invoke(app, opt)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, r dscs.InvokeResult) {
		bd := r.Breakdown
		fmt.Printf("%-18s total=%-9v stack=%-8v remoteIO=%-9v compute=%-9v deviceIO=%-8v energy=%v\n",
			name, r.Total().Round(time.Microsecond),
			bd.Stack.Round(time.Microsecond),
			(bd.RemoteRead + bd.RemoteWrite).Round(time.Microsecond),
			bd.Compute.Round(time.Microsecond),
			(bd.DeviceIO + bd.Driver).Round(time.Microsecond),
			r.Energy)
	}
	show("Baseline (CPU)", base)
	show("DSCS-Serverless", accel)

	fmt.Printf("\nSpeedup:          %.2fx\n", base.Total().Seconds()/accel.Total().Seconds())
	fmt.Printf("Energy reduction: %.2fx\n", float64(base.Energy)/float64(accel.Energy))
	fmt.Println("\nThe remote-storage reads and writes that dominate the baseline vanish:")
	fmt.Println("the function ran on the accelerator inside the drive that holds its data.")
}
