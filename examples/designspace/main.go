// Designspace: run the Section 4.2 exploration with the public API and
// answer the architect's question — how big should an accelerator inside a
// 25W storage drive be? Prints the power-performance frontier and the
// selected design point (Figures 7-8).
package main

import (
	"fmt"
	"log"

	"dscs"
)

func main() {
	fmt.Println("Evaluating >650 DSA configurations across the benchmark suite...")
	points, err := dscs.ExploreDesignSpace()
	if err != nil {
		log.Fatal(err)
	}

	frontier := dscs.ParetoPower(points)
	fmt.Printf("\nPower-performance frontier (%d of %d points):\n",
		len(frontier), len(points))
	fmt.Printf("%-26s %-14s %-12s %s\n", "design", "throughput", "dyn power", "fits 25W drive?")
	for _, p := range frontier {
		fits := "no"
		if p.Feasible {
			fits = "yes"
		}
		fmt.Printf("%-26s %8.0f req/s %10.1f W  %s\n",
			p.Label(), p.Throughput, float64(p.DynPower), fits)
	}

	best, ok := dscs.OptimalDesign(points)
	if !ok {
		log.Fatal("no feasible design found")
	}
	fmt.Printf("\nSelected: %s\n", best.Label())
	fmt.Println("\nBigger arrays lose at batch one: a 1024x1024 array spends its cycles")
	fmt.Println("filling and draining; tile DMA cannot hide behind so little compute.")
	// Compare on the selected design's memory class — HBM2 can mask the
	// tile DMA, but no HBM2 monster fits the 25W drive budget anyway.
	var big, small float64
	for _, p := range points {
		if p.Config.DRAM != best.Config.DRAM {
			continue
		}
		if p.Config.Rows == 1024 && p.Throughput > big {
			big = p.Throughput
		}
		if p.Config.Rows == 128 && p.Throughput > small {
			small = p.Throughput
		}
	}
	fmt.Printf("best 128x128 on %v: %.0f req/s    best 1024x1024 on %v: %.0f req/s\n",
		best.Config.DRAM, small, best.Config.DRAM, big)
}
