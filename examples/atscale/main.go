// Atscale: the Figure 13 experiment as a runnable scenario. A 20-minute
// bursty trace (200-730 requests/s) hits a 200-instance serverless pool;
// the baseline's queue balloons while DSCS-Serverless absorbs the bursts.
// Prints the arrival rate and queue-depth time series as ASCII sparklines.
package main

import (
	"fmt"
	"log"
	"strings"

	"dscs"
	"dscs/internal/metrics"
)

func main() {
	env, err := dscs.NewEnvironment(99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Replaying a 20-minute bursty trace against 200 instances...")
	res, err := dscs.RunExperiment("fig13", env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table.String())

	for _, s := range res.Series {
		fmt.Printf("%-26s %s\n", s.Name, sparkline(s, 72))
	}

	fmt.Printf("\nWall-clock improvement at scale: %.1fx\n", res.Value("wallclock_improvement"))
	fmt.Println("Each DSCS instance serves requests several times faster, so the same")
	fmt.Println("200-instance cap absorbs bursts that drown the baseline's queue.")
}

// sparkline renders a series as a fixed-width ASCII intensity strip.
func sparkline(s *metrics.Series, width int) string {
	if len(s.Points) == 0 {
		return "(empty)"
	}
	levels := []byte(" .:-=+*#%@")
	max := s.MaxValue()
	if max <= 0 {
		return strings.Repeat(" ", width)
	}
	out := make([]byte, width)
	for i := 0; i < width; i++ {
		idx := i * len(s.Points) / width
		frac := s.Points[idx].Value / max
		l := int(frac * float64(len(levels)-1))
		out[i] = levels[l]
	}
	return string(out) + fmt.Sprintf("  (peak %.0f)", max)
}
