// Wildfire: the paper's motivating SDG&E scenario (Section 2). Drone survey
// tiles land in disaggregated storage; a three-function serverless pipeline
// (preprocess -> ViT inference -> notify) analyzes each for fire risk. This
// example deploys the pipeline from its YAML, then contrasts every Table 2
// platform on the same workload — reproducing the Figure 9 story for one
// application.
package main

import (
	"fmt"
	"log"
	"time"

	"dscs"
)

func main() {
	env, err := dscs.NewEnvironment(2026)
	if err != nil {
		log.Fatal(err)
	}
	app := dscs.BenchmarkBySlug("remote-sensing")

	fmt.Println("Deployment file (extended OpenFaaS YAML with DSA hints):")
	fmt.Println(dscs.DeploymentYAML(app))

	fmt.Printf("Each drone tile: %v raw -> %v tensor -> %v verdict\n\n",
		app.InputBytes, app.IntermediateBytes, app.OutputBytes)

	opt := dscs.InvokeOptions{Quantile: 0.5}
	var baseTotal time.Duration
	fmt.Printf("%-22s %-12s %-10s %s\n", "Platform", "latency", "speedup", "where f1/f2 ran")
	for _, p := range dscs.Platforms() {
		runner, err := env.Runner(p.Name())
		if err != nil {
			log.Fatal(err)
		}
		res, err := runner.Invoke(app, opt)
		if err != nil {
			log.Fatal(err)
		}
		if baseTotal == 0 {
			baseTotal = res.Total()
		}
		where := "compute node, data via S3"
		if p.NearStorage() {
			where = "storage node, data local"
		}
		if p.Name() == "DSCS-Serverless" {
			where = "inside the drive, via P2P"
		}
		fmt.Printf("%-22s %-12v %-10.2f %s\n",
			p.Name(), res.Total().Round(time.Millisecond),
			baseTotal.Seconds()/res.Total().Seconds(), where)
	}

	fmt.Println("\nA tile that took the baseline hundreds of milliseconds clears the")
	fmt.Println("in-storage accelerator in tens — fire alerts go out sooner.")
}
