// Gateway: stand up the OpenFaaS-style HTTP API over the simulated cluster
// and drive it exactly as an operator would with curl — deploy a YAML
// application, invoke it on both platforms, and scrape the telemetry.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"dscs"
)

func main() {
	env, err := dscs.NewEnvironment(11)
	if err != nil {
		log.Fatal(err)
	}
	handler, err := dscs.NewGatewayHandler(env)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	app := dscs.BenchmarkBySlug("clinical")
	fmt.Println("POST /system/functions  (deploying the clinical-analysis pipeline)")
	resp, err := http.Post(srv.URL+"/system/functions", "application/x-yaml",
		strings.NewReader(dscs.DeploymentYAML(app)))
	if err != nil {
		log.Fatal(err)
	}
	echo(resp)

	fmt.Println("POST /function/clinical  (routed to the in-storage DSA)")
	resp, err = http.Post(srv.URL+"/function/clinical", "application/json",
		strings.NewReader(`{"quantile":0.5}`))
	if err != nil {
		log.Fatal(err)
	}
	echo(resp)

	fmt.Println("POST /function/clinical?platform=Baseline (CPU)  (forced fallback)")
	resp, err = http.Post(srv.URL+"/function/clinical?platform="+url.QueryEscape("Baseline (CPU)"),
		"application/json", strings.NewReader(`{"quantile":0.5}`))
	if err != nil {
		log.Fatal(err)
	}
	echo(resp)

	fmt.Println("GET /metrics")
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	echo(resp)
}

func echo(resp *http.Response) {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	fmt.Printf("%s\n%s\n", resp.Status, body)
}
