// bench_test.go is the benchmark harness: one testing.B target per table
// and figure of the paper's evaluation (each iteration regenerates the
// experiment and reports its headline numbers as custom metrics), plus the
// ablation benches for the design choices DESIGN.md calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package dscs_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dscs"
	"dscs/internal/compiler"
	"dscs/internal/csd"
	"dscs/internal/dsa"
	"dscs/internal/model"
	"dscs/internal/units"
)

var (
	benchOnce sync.Once
	benchEnv  *dscs.Environment
	benchErr  error
)

func sharedEnv(b *testing.B) *dscs.Environment {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = dscs.NewEnvironment(42)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// runExperiment benchmarks one experiment and surfaces named findings.
func runExperiment(b *testing.B, id string, metricNames ...string) {
	env := sharedEnv(b)
	var last *dscs.ExperimentResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dscs.RunExperiment(id, env)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	for _, name := range metricNames {
		b.ReportMetric(last.Value(name), metricUnit(name))
	}
}

// metricUnit sanitizes a finding name into a ReportMetric-legal unit
// (no whitespace).
func metricUnit(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch r {
		case ' ', '\t', '(', ')':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkTable1Benchmarks(b *testing.B) {
	runExperiment(b, "table1", "benchmarks")
}

func BenchmarkTable2Platforms(b *testing.B) {
	runExperiment(b, "table2", "platforms")
}

func BenchmarkFig3ReadLatencyCDF(b *testing.B) {
	runExperiment(b, "fig3", "mean_p99_over_p50")
}

func BenchmarkFig4RuntimeBreakdown(b *testing.B) {
	runExperiment(b, "fig4", "mean_comm_frac", "amdahl_compute_cap")
}

func BenchmarkFig7PowerPerfPareto(b *testing.B) {
	runExperiment(b, "fig7", "configs_explored", "optimal_dim")
}

func BenchmarkFig8AreaPerfPareto(b *testing.B) {
	runExperiment(b, "fig8", "frontier_points")
}

func BenchmarkFig9Speedup(b *testing.B) {
	runExperiment(b, "fig9", "geomean/DSCS-Serverless", "dscs_over_gpu")
}

func BenchmarkFig10Breakdown(b *testing.B) {
	runExperiment(b, "fig10", "remote_frac/Baseline (CPU)/asset-damage")
}

func BenchmarkFig11Energy(b *testing.B) {
	runExperiment(b, "fig11", "geomean/DSCS-Serverless", "dsa_compute_energy_ratio")
}

func BenchmarkFig12CostEfficiency(b *testing.B) {
	runExperiment(b, "fig12", "cost_eff/DSCS-Serverless", "cost_eff/NS-FPGA (SmartSSD)")
}

func BenchmarkFig13AtScale(b *testing.B) {
	runExperiment(b, "fig13", "wallclock_improvement", "baseline_peak_queue")
}

func BenchmarkFig14BatchSize(b *testing.B) {
	runExperiment(b, "fig14", "geomean/batch1", "geomean/batch64")
}

func BenchmarkFig15TailLatency(b *testing.B) {
	runExperiment(b, "fig15", "speedup/p50", "speedup/p99")
}

func BenchmarkFig16AcceleratedFunctions(b *testing.B) {
	runExperiment(b, "fig16", "speedup/extra0", "speedup/extra3")
}

func BenchmarkFig17ColdStart(b *testing.B) {
	runExperiment(b, "fig17", "speedup/warm", "speedup/cold")
}

// --- Ablation benches (design choices from DESIGN.md) ---

// BenchmarkAblationArraySize contrasts the selected 128x128 array with a
// 1024x1024 monster at batch 1 (the paper's key DSE finding).
func BenchmarkAblationArraySize(b *testing.B) {
	small := dscs.PaperDSA()
	big := dscs.PaperDSA()
	big.Rows, big.Cols = 1024, 1024
	big = big.WithBuffers(32 * units.MiB)
	g := model.ResNet50()
	var sLat, bLat float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range []dsa.Config{small, big} {
			prog, err := dscs.Compile(g, 1, cfg)
			if err != nil {
				b.Fatal(err)
			}
			st, err := dscs.Simulate(prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			lat := st.Latency(cfg.Freq).Seconds() * 1e3
			if cfg.Rows == 128 {
				sLat = lat
			} else {
				bLat = lat
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(sLat, "ms-dim128")
	b.ReportMetric(bLat, "ms-dim1024")
}

// BenchmarkAblationDoubleBuffering measures the tile-DMA/compute overlap.
func BenchmarkAblationDoubleBuffering(b *testing.B) {
	on := dscs.PaperDSA()
	off := dscs.PaperDSA()
	off.DoubleBuffered = false
	g := model.InceptionV3Clinical()
	var onLat, offLat float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range []dsa.Config{on, off} {
			prog, err := dscs.Compile(g, 1, cfg)
			if err != nil {
				b.Fatal(err)
			}
			st, err := dscs.Simulate(prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			lat := st.Latency(cfg.Freq).Seconds() * 1e3
			if cfg.DoubleBuffered {
				onLat = lat
			} else {
				offLat = lat
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(onLat, "ms-overlapped")
	b.ReportMetric(offLat, "ms-serialized")
}

// BenchmarkAblationFusion measures operator fusion's DRAM savings.
func BenchmarkAblationFusion(b *testing.B) {
	cfg := dscs.PaperDSA()
	g := model.ResNet18Moderation()
	var fusedMB, unfusedMB float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fused, err := compiler.Compile(g, 1, cfg, compiler.Options{})
		if err != nil {
			b.Fatal(err)
		}
		unfused, err := compiler.Compile(g, 1, cfg, compiler.Options{DisableFusion: true})
		if err != nil {
			b.Fatal(err)
		}
		fusedMB = float64(fused.DRAMBytes()) / 1e6
		unfusedMB = float64(unfused.DRAMBytes()) / 1e6
	}
	b.StopTimer()
	b.ReportMetric(fusedMB, "MB-fused")
	b.ReportMetric(unfusedMB, "MB-unfused")
}

// BenchmarkAblationP2P contrasts the dedicated P2P path with a
// host-mediated detour through the storage node's CPU.
func BenchmarkAblationP2P(b *testing.B) {
	drive, err := csd.New(csd.Default())
	if err != nil {
		b.Fatal(err)
	}
	g := model.SSDMobileNetPPE()
	prog, err := dscs.Compile(g, 1, drive.Config().DSA)
	if err != nil {
		b.Fatal(err)
	}
	in := units.Bytes(18 * units.MB)
	drive.SSD().HostWrite(0, in)
	var p2pMS, hostMS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p2p, err := drive.Run(prog, 0, in, 100*units.KB)
		if err != nil {
			b.Fatal(err)
		}
		host, err := drive.RunHostMediated(prog, 0, in, 100*units.KB)
		if err != nil {
			b.Fatal(err)
		}
		p2pMS = p2p.Total().Seconds() * 1e3
		hostMS = host.Total().Seconds() * 1e3
	}
	b.StopTimer()
	b.ReportMetric(p2pMS, "ms-p2p")
	b.ReportMetric(hostMS, "ms-host-mediated")
}

// BenchmarkAblationChaining measures what keeping f1->f2 intermediates
// on-drive saves versus round-tripping them through the object store.
func BenchmarkAblationChaining(b *testing.B) {
	env := sharedEnv(b)
	bm := dscs.BenchmarkBySlug("ppe-detection")
	var chainedMS, roundTripMS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.DSCS().Invoke(bm, dscs.InvokeOptions{Quantile: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		chainedMS = res.Total().Seconds() * 1e3
		// The unchained variant pays a store write + read of the
		// intermediate tensor between f1 and f2.
		wLat, _, err := env.Store.PutAt("ablation/intermediate", bm.IntermediateBytes, true, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		rLat, _, err := env.Store.GetAt("ablation/intermediate", 0.5)
		if err != nil {
			b.Fatal(err)
		}
		roundTripMS = chainedMS + (wLat+rLat).Seconds()*1e3
	}
	b.StopTimer()
	b.ReportMetric(chainedMS, "ms-chained")
	b.ReportMetric(roundTripMS, "ms-roundtrip")
}

// BenchmarkAblationKeepWarm contrasts warm and cold invocations.
func BenchmarkAblationKeepWarm(b *testing.B) {
	env := sharedEnv(b)
	bm := dscs.BenchmarkBySlug("chatbot")
	var warmMS, coldMS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm, err := env.DSCS().Invoke(bm, dscs.InvokeOptions{Quantile: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		cold, err := env.DSCS().Invoke(bm, dscs.InvokeOptions{Quantile: 0.5, Cold: true})
		if err != nil {
			b.Fatal(err)
		}
		warmMS = warm.Total().Seconds() * 1e3
		coldMS = cold.Total().Seconds() * 1e3
	}
	b.StopTimer()
	b.ReportMetric(warmMS, "ms-warm")
	b.ReportMetric(coldMS, "ms-cold")
}

// --- Micro-benchmarks of the core machinery ---

// BenchmarkCompilerResNet50 measures compilation throughput.
func BenchmarkCompilerResNet50(b *testing.B) {
	cfg := dscs.PaperDSA()
	g := model.ResNet50()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(g, 1, cfg, compiler.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSASimBERT measures cycle-level simulation throughput.
func BenchmarkDSASimBERT(b *testing.B) {
	cfg := dscs.PaperDSA()
	prog, err := dscs.Compile(model.BERTBaseChatbot(), 1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dscs.Simulate(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndInvocation measures one full DSCS invocation through the
// whole stack (store, drive, DSA, f3).
func BenchmarkEndToEndInvocation(b *testing.B) {
	env := sharedEnv(b)
	bm := dscs.BenchmarkBySlug("asset-damage")
	opt := dscs.InvokeOptions{Quantile: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.DSCS().Invoke(bm, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObjectStoreGet measures the storage path model.
func BenchmarkObjectStoreGet(b *testing.B) {
	env := sharedEnv(b)
	if _, _, err := env.Store.PutAt("bench/obj", 4*units.MB, false, 0.5); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Store.GetAt("bench/obj", -1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benches (paper future-work features) ---

// BenchmarkExtScheduling regenerates the Section 5.3 scheduling-policy study.
func BenchmarkExtScheduling(b *testing.B) {
	runExperiment(b, "ext-sched", "criticality_gain", "dag_gain")
}

// BenchmarkExtMemcache regenerates the keep-warm memory-manager study.
func BenchmarkExtMemcache(b *testing.B) {
	runExperiment(b, "ext-memcache", "hit_rate", "p2p_vs_registry")
}

// BenchmarkExtScatter regenerates the multi-CSD scatter/gather study.
func BenchmarkExtScatter(b *testing.B) {
	runExperiment(b, "ext-scatter", "gain/ppe-detection")
}

// BenchmarkExtFailover regenerates the drive-failure/fail-over study.
// It runs on a private environment: it damages and repairs the cluster.
func BenchmarkExtFailover(b *testing.B) {
	env, err := dscs.NewEnvironment(777)
	if err != nil {
		b.Fatal(err)
	}
	var last *dscs.ExperimentResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dscs.RunExperiment("ext-failover", env)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(last.Value("fallback_penalty"), "fallback_penalty")
	b.ReportMetric(last.Value("repaired_mb"), "repaired_mb")
}

// BenchmarkServeConcurrent contrasts the two serving disciplines under
// parallel load: a global mutex serializing every Runner.Invoke (the
// pre-serve-engine behavior) versus the worker-pool engine with admission
// control and batching. The ns/op gap is the concurrency speedup the
// serving core buys; BENCH_*.json tracks it across PRs. The pool arm
// submits fire-and-forget (SubmitAsync) and drains with Quiesce, so it
// measures the engine's sustained throughput; even on a single-core
// runner same-benchmark coalescing lets it beat the mutex, and with
// GOMAXPROCS > 1 the pool also overlaps invocations the mutex would
// serialize.
func BenchmarkServeConcurrent(b *testing.B) {
	env, err := dscs.NewEnvironment(91)
	if err != nil {
		b.Fatal(err)
	}
	bm := dscs.BenchmarkBySlug("asset-damage")
	opt := dscs.InvokeOptions{Quantile: 0.5}
	// Warm the program cache so both disciplines measure steady state.
	if _, err := env.DSCS().Invoke(bm, opt); err != nil {
		b.Fatal(err)
	}

	// 8 submitters per core: an arrival burst, not a lockstep loop —
	// this is what lets the engine's same-benchmark coalescing engage.
	b.Run("mutex-serialized", func(b *testing.B) {
		var mu sync.Mutex
		runner := env.DSCS()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				mu.Lock()
				_, err := runner.Invoke(bm, opt)
				mu.Unlock()
				if err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	// The pool arm submits fire-and-forget: a blocking Submit would park
	// every submitter on its reply channel and the bench would measure
	// channel round-trips, not engine throughput. Quiesce keeps the clock
	// honest — sustained means served, so the timer runs until the
	// admitted backlog drains.
	b.Run("worker-pool", func(b *testing.B) {
		srv, err := dscs.NewServer(env, dscs.ServeOptions{Workers: 8, QueueDepth: 4096})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		b.ResetTimer()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				for srv.SubmitAsync("DSCS-Serverless", bm, opt) != nil {
					// Admission bound reached: the workers are behind;
					// yield and retry rather than spinning on a full queue.
					runtime.Gosched()
				}
			}
		})
		if !srv.Quiesce(time.Minute) {
			b.Fatal("engine did not quiesce")
		}
	})
}

// BenchmarkGatewayInvoke measures an invocation through the full HTTP path.
func BenchmarkGatewayInvoke(b *testing.B) {
	env, err := dscs.NewEnvironment(55)
	if err != nil {
		b.Fatal(err)
	}
	gw, err := dscs.NewGateway(env, dscs.ServeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/system/functions", "application/x-yaml",
		strings.NewReader(dscs.DeploymentYAML(dscs.BenchmarkBySlug("moderation"))))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(srv.URL+"/function/moderation", "application/json",
			strings.NewReader(`{"quantile":0.5}`))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
