module dscs

go 1.24
