// dscslint is the scheduler core's invariant multichecker: it bundles
// the internal/analysis suite — clockcheck (clock injection), rngcheck
// (split-stream RNG determinism), lockcheck (no blocking under a pool
// lock), hotpathcheck (no per-op label/map allocation on annotated hot
// paths) — and runs it over the module the way `go vet` would, exiting
// nonzero when any invariant is violated. CI runs it beside staticcheck;
// see ARCHITECTURE.md's "Enforced invariants" table for what each
// analyzer guards and which runtime harness backs it up.
//
// Usage:
//
//	dscslint [-github] [-list] [packages]
//
// Packages default to ./... relative to the current directory. -github
// re-renders findings as GitHub Actions workflow commands so they land
// as annotations on the PR diff (auto-enabled under GITHUB_ACTIONS).
package main

import (
	"flag"
	"fmt"
	"os"

	"dscs/internal/analysis"
	"dscs/internal/analysis/clockcheck"
	"dscs/internal/analysis/hotpathcheck"
	"dscs/internal/analysis/lockcheck"
	"dscs/internal/analysis/rngcheck"
)

var suite = []*analysis.Analyzer{
	clockcheck.Analyzer,
	rngcheck.Analyzer,
	lockcheck.Analyzer,
	hotpathcheck.Analyzer,
}

func main() {
	github := flag.Bool("github", os.Getenv("GITHUB_ACTIONS") == "true",
		"emit findings as GitHub Actions annotations")
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dscslint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dscslint:", err)
		os.Exit(2)
	}
	broken := false
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			broken = true
			fmt.Fprintf(os.Stderr, "dscslint: %s: %v\n", p.ImportPath, terr)
		}
	}
	if broken {
		// Findings over a half-checked tree mislead more than they help.
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, suite)
	for _, d := range diags {
		if *github {
			fmt.Println(analysis.GitHubAnnotation(d, cwd))
		} else {
			fmt.Println(analysis.Format(d, cwd))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dscslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
