// Command dscsprof profiles a model on a DSA design point: per-layer
// cycles, the compute/memory balance, array utilization, and the energy
// estimate — the view an accelerator engineer uses to find what a network
// is bound by.
//
// Usage:
//
//	dscsprof -model bert-base
//	dscsprof -model resnet-50 -batch 8 -dim 32 -top 15
//	dscsprof -model gpt2-small -disasm
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dscs/internal/compiler"
	"dscs/internal/dsa"
	"dscs/internal/model"
	"dscs/internal/power"
	"dscs/internal/units"
)

func zoo() map[string]*model.Graph {
	graphs := []*model.Graph{
		model.LogisticRegressionCredit(4096), model.ResNet50(),
		model.SSDMobileNetPPE(), model.BERTBaseChatbot(),
		model.MarianTranslation(), model.InceptionV3Clinical(),
		model.ResNet18Moderation(), model.ViTRemoteSensing(),
		model.GPT2Generative(),
	}
	out := make(map[string]*model.Graph, len(graphs))
	for _, g := range graphs {
		out[g.Name] = g
	}
	return out
}

func main() {
	var (
		name   = flag.String("model", "resnet-50", "model name from the zoo")
		batch  = flag.Int("batch", 1, "batch size")
		dim    = flag.Int("dim", 128, "systolic array dimension")
		bufMiB = flag.Int("buf", 4, "total on-chip buffer MiB")
		top    = flag.Int("top", 10, "layers to show")
		disasm = flag.Bool("disasm", false, "dump the compiled program instead")
		list   = flag.Bool("list", false, "list available models")
	)
	flag.Parse()

	models := zoo()
	if *list {
		names := make([]string, 0, len(models))
		for n := range models {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-20s %s\n", n, models[n].String())
		}
		return
	}
	g, ok := models[*name]
	if !ok {
		fail(fmt.Errorf("unknown model %q (try -list)", *name))
	}

	cfg := dsa.Config{
		Name: "prof", Rows: *dim, Cols: *dim, VPULanes: *dim,
		Freq: units.GHz, DRAM: power.DDR5, DoubleBuffered: true,
	}.WithBuffers(units.Bytes(*bufMiB) * units.MiB)

	prog, err := compiler.Compile(g, *batch, cfg, compiler.Options{})
	if err != nil {
		fail(err)
	}
	if *disasm {
		fmt.Print(prog.Disassemble())
		return
	}

	sim, err := dsa.New(cfg)
	if err != nil {
		fail(err)
	}
	sim.KeepPerLayer(true)
	st, err := sim.Run(prog)
	if err != nil {
		fail(err)
	}

	fmt.Printf("%s  batch=%d  on %s @ %v\n", g.String(), *batch, cfg, cfg.Freq)
	fmt.Printf("total: %v  (%d cycles)  utilization %.1f%%\n",
		st.Latency(cfg.Freq), st.Cycles, 100*st.Utilization(cfg))
	fmt.Printf("MACs %.2fG  DRAM %v  compute-cycles %d  dma-cycles %d  vpu-cycles %d\n",
		float64(st.MACs)/1e9, st.DRAMBytes, st.ComputeCycles, st.MemCycles, st.VectorCycles)
	e14, p14 := sim.Energy(st, power.Node14nm)
	fmt.Printf("energy %v (avg %v at 14nm)\n\n", e14, p14)

	// Top layers by cycle share.
	layers := append([]dsa.LayerStat(nil), st.PerLayer...)
	sort.Slice(layers, func(i, j int) bool { return layers[i].Cycles > layers[j].Cycles })
	if *top > len(layers) {
		*top = len(layers)
	}
	fmt.Printf("%-28s %-12s %-10s %s\n", "layer", "op", "cycles", "share")
	for _, ls := range layers[:*top] {
		fmt.Printf("%-28s %-12s %-10d %5.1f%%\n",
			ls.Layer, ls.Op, ls.Cycles, 100*float64(ls.Cycles)/float64(st.Cycles))
	}
	var shown uint64
	for _, ls := range layers[:*top] {
		shown += ls.Cycles
	}
	fmt.Printf("(top %d layers cover %.1f%% of %d instructions)\n",
		*top, 100*float64(shown)/float64(st.Cycles), len(layers))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dscsprof:", err)
	os.Exit(1)
}
