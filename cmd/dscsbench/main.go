// Command dscsbench regenerates the paper's tables and figures, and runs
// the serve core's raw-speed harness.
//
// Usage:
//
//	dscsbench -list
//	dscsbench -run fig9
//	dscsbench -run all -seed 42
//	dscsbench -run fig13 -series
//	dscsbench -hotpath -pr 6 -out BENCH_6.json
//	dscsbench -hotpath -compare BENCH_6.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"dscs"
	"dscs/internal/bench"
)

func main() {
	var (
		runID    = flag.String("run", "", "experiment id to run (e.g. fig9), or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		seed     = flag.Uint64("seed", 42, "random seed for the environment")
		series   = flag.Bool("series", false, "also print time series points")
		hotpath  = flag.Bool("hotpath", false, "run the serve hot-path benchmark suite")
		out      = flag.String("out", "", "with -hotpath: write the report to this BENCH_<n>.json")
		compare  = flag.String("compare", "", "with -hotpath: diff against this committed BENCH_<n>.json and fail on regression")
		pr       = flag.Int("pr", 0, "with -hotpath: PR number stamped into the report")
		perStage = flag.Duration("perstage", 100*time.Millisecond, "with -hotpath: duration of each (stage, workers) measurement")
		cpuProf  = flag.String("cpuprofile", "", "with -hotpath: write a CPU profile of the suite")
		psRPS    = flag.Float64("preshard-rps", 0, "with -hotpath: record this pre-shard baseline submits/sec (measured at -preshard-commit)")
		psCommit = flag.String("preshard-commit", "", "with -hotpath: commit the pre-shard baseline was measured at")
		psNote   = flag.String("preshard-note", "", "with -hotpath: how the pre-shard baseline was measured")
	)
	flag.Parse()

	if *hotpath {
		if *cpuProf != "" {
			f, err := os.Create(*cpuProf)
			if err != nil {
				fail(err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fail(err)
			}
			defer pprof.StopCPUProfile()
		}
		var ps *bench.PreShard
		if *psRPS > 0 {
			ps = &bench.PreShard{SubmitsPerSec: *psRPS, Commit: *psCommit, Note: *psNote}
		}
		runHotPath(*pr, *perStage, *out, *compare, ps)
		return
	}

	if *list || *runID == "" {
		fmt.Println("Available experiments:")
		for _, s := range dscs.Experiments() {
			fmt.Printf("  %-8s %s\n", s.ID, s.Title)
		}
		if *runID == "" && !*list {
			fmt.Println("\nUse -run <id> or -run all.")
		}
		return
	}

	env, err := dscs.NewEnvironment(*seed)
	if err != nil {
		fail(err)
	}

	ids := []string{*runID}
	if *runID == "all" {
		ids = ids[:0]
		for _, s := range dscs.Experiments() {
			ids = append(ids, s.ID)
		}
	}
	for _, id := range ids {
		res, err := dscs.RunExperiment(id, env)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.String())
		if *series {
			for _, s := range res.Series {
				fmt.Printf("series %s (%d points)\n", s.Name, len(s.Points))
				for _, p := range s.Points {
					fmt.Printf("  %10.3fs  %.3f\n", p.At.Seconds(), p.Value)
				}
			}
		}
	}
}

// runHotPath runs the raw-speed suite, prints it, and optionally writes
// the trajectory point (-out) or gates against a committed one (-compare).
func runHotPath(pr int, perStage time.Duration, out, compare string, preShard *bench.PreShard) {
	rep, err := bench.Run(bench.Options{PR: pr, PerStage: perStage, PreShard: preShard})
	if err != nil {
		fail(err)
	}
	fmt.Printf("serve hot path (%s %s/%s, GOMAXPROCS=%d, %s per stage)\n",
		rep.GoVersion, rep.GOOS, rep.GOARCH, rep.GOMAXPROCS, perStage)
	for _, r := range rep.Results {
		fmt.Printf("  %-22s w%-3d %12.1f ns/op %14.0f ops/s %8.2f allocs/op %10.1f B/op\n",
			r.Name, r.Workers, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp, r.BytesPerOp)
	}
	if rep.Speedup64 > 0 {
		fmt.Printf("  sharded/blocking sustained submits/sec at 64 workers (same binary): %.2fx\n", rep.Speedup64)
	}
	if rep.Speedup64PreShard > 0 {
		fmt.Printf("  sharded vs pre-shard baseline (%.0f submits/sec @ %s): %.2fx\n",
			rep.PreShard.SubmitsPerSec, rep.PreShard.Commit, rep.Speedup64PreShard)
	}
	if out != "" {
		if err := rep.Write(out); err != nil {
			fail(err)
		}
		fmt.Println("wrote", out)
	}
	if compare != "" {
		committed, err := bench.Load(compare)
		if err != nil {
			fail(err)
		}
		lines, err := bench.Compare(committed, rep, bench.DefaultTolerance)
		for _, l := range lines {
			fmt.Println(" ", l)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("no submits/sec regression past %.0f%% vs %s\n", bench.DefaultTolerance*100, compare)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dscsbench:", err)
	os.Exit(1)
}
