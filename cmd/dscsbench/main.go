// Command dscsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dscsbench -list
//	dscsbench -run fig9
//	dscsbench -run all -seed 42
//	dscsbench -run fig13 -series
package main

import (
	"flag"
	"fmt"
	"os"

	"dscs"
)

func main() {
	var (
		runID  = flag.String("run", "", "experiment id to run (e.g. fig9), or 'all'")
		list   = flag.Bool("list", false, "list available experiments")
		seed   = flag.Uint64("seed", 42, "random seed for the environment")
		series = flag.Bool("series", false, "also print time series points")
	)
	flag.Parse()

	if *list || *runID == "" {
		fmt.Println("Available experiments:")
		for _, s := range dscs.Experiments() {
			fmt.Printf("  %-8s %s\n", s.ID, s.Title)
		}
		if *runID == "" && !*list {
			fmt.Println("\nUse -run <id> or -run all.")
		}
		return
	}

	env, err := dscs.NewEnvironment(*seed)
	if err != nil {
		fail(err)
	}

	ids := []string{*runID}
	if *runID == "all" {
		ids = ids[:0]
		for _, s := range dscs.Experiments() {
			ids = append(ids, s.ID)
		}
	}
	for _, id := range ids {
		res, err := dscs.RunExperiment(id, env)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.String())
		if *series {
			for _, s := range res.Series {
				fmt.Printf("series %s (%d points)\n", s.Name, len(s.Points))
				for _, p := range s.Points {
					fmt.Printf("  %10.3fs  %.3f\n", p.At.Seconds(), p.Value)
				}
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dscsbench:", err)
	os.Exit(1)
}
