// Command dscsctl is the operator's view of the simulated cluster: it
// deploys a Table 1 application (printing its extended OpenFaaS-style YAML
// with the in-storage acceleration hints), invokes it on a chosen platform,
// and prints per-invocation latency breakdowns.
//
// Usage:
//
//	dscsctl -app remote-sensing -platform "DSCS-Serverless" -n 5
//	dscsctl -app ppe-detection -platform "Baseline (CPU)" -show-yaml
//	dscsctl -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dscs"
)

func main() {
	var (
		app      = flag.String("app", "remote-sensing", "benchmark slug to deploy")
		plat     = flag.String("platform", "DSCS-Serverless", "platform name from Table 2")
		n        = flag.Int("n", 5, "number of invocations")
		batch    = flag.Int("batch", 1, "request batch size")
		cold     = flag.Bool("cold", false, "force a cold container start")
		showYAML = flag.Bool("show-yaml", false, "print the deployment YAML")
		list     = flag.Bool("list", false, "list applications and platforms")
		seed     = flag.Uint64("seed", 7, "environment seed")
	)
	flag.Parse()

	if *list {
		fmt.Println("Applications:")
		for _, b := range dscs.Suite() {
			fmt.Printf("  %-16s %s\n", b.Slug, b.Description)
		}
		fmt.Println("Platforms:")
		for _, p := range dscs.Platforms() {
			fmt.Printf("  %q\n", p.Name())
		}
		return
	}

	b := dscs.BenchmarkBySlug(*app)
	if b == nil {
		fail(fmt.Errorf("unknown application %q (try -list)", *app))
	}
	if *showYAML {
		fmt.Print(dscs.DeploymentYAML(b))
		return
	}

	env, err := dscs.NewEnvironment(*seed)
	if err != nil {
		fail(err)
	}
	runner, err := env.Runner(*plat)
	if err != nil {
		fail(err)
	}

	fmt.Printf("Deployed %s (%s) on %s.\n", b.Name, b.Model.String(), *plat)
	fmt.Printf("%-4s %-12s %-10s %-10s %-10s %-10s %-10s %-10s\n",
		"#", "total", "stack", "remoteIO", "compute", "deviceIO", "driver", "notify")
	var sum time.Duration
	for i := 0; i < *n; i++ {
		res, err := runner.Invoke(b, dscs.InvokeOptions{Batch: *batch, Cold: *cold && i == 0})
		if err != nil {
			fail(err)
		}
		bd := res.Breakdown
		fmt.Printf("%-4d %-12v %-10v %-10v %-10v %-10v %-10v %-10v\n",
			i+1, res.Total().Round(time.Microsecond),
			bd.Stack.Round(time.Microsecond),
			(bd.RemoteRead + bd.RemoteWrite).Round(time.Microsecond),
			bd.Compute.Round(time.Microsecond),
			bd.DeviceIO.Round(time.Microsecond),
			bd.Driver.Round(time.Microsecond),
			bd.Notify.Round(time.Microsecond))
		sum += res.Total()
	}
	fmt.Printf("mean end-to-end latency: %v\n", (sum / time.Duration(*n)).Round(time.Microsecond))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dscsctl:", err)
	os.Exit(1)
}
