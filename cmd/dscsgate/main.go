// Command dscsgate serves the OpenFaaS-style gateway over the simulated
// cluster: deploy Table 1 applications from their YAML, invoke them over
// HTTP, and scrape telemetry — the operator-facing face of DSCS-Serverless.
//
// Usage:
//
//	dscsgate -addr :8080 -workers 8 -policy criticality &
//	curl -X POST --data-binary @app.yaml localhost:8080/system/functions
//	curl -X POST -d '{"quantile":0.5}' localhost:8080/function/asset-damage
//	curl localhost:8080/system/functions
//	curl localhost:8080/metrics
//
// Pass -deploy-all to pre-deploy the whole benchmark suite. The serving
// engine is tuned with -workers (pool size per platform), -policy (fcfs,
// criticality, dag-aware), -queue-depth (admission bound; a full queue
// returns HTTP 429), -max-batch (same-benchmark request coalescing),
// -batch-linger (how long a dispatch may wait for its batch to fill
// toward -max-batch), -global-batch/-batch-slo (queue-level SLO-aware
// batch forming ahead of dispatch; watch serve_batch_formed_total),
// -spillover-threshold (DSCS queue depth beyond which submissions reroute
// to the CPU pool; watch serve_spillover_total on /metrics),
// -steal-threshold (peer backlog depth beyond which an idle pool pulls the
// other class's queued work; watch serve_steal_total),
// -adaptive-estimates/-estimate-warmup (price batching and policy
// decisions with live latency digests instead of the static model-derived
// estimates once a benchmark has enough observations; watch the
// serve_latency_p50/p95/p99 gauges), and -adaptive-balance (replace the
// static spillover/steal depth counts with the wait-keyed decision: work
// rebalances once a pool's adopted queue-delay p95 diverges above a
// peer's; watch the serve_queue_delay_p50/p95/p99 gauges).
//
// The failure model is armed with -hedge-factor (duplicate a straggling
// execution on a healthy peer once it outlives that multiple of its
// adopted service-p95; watch serve_hedges_fired_total/serve_hedges_won_
// total) and -fault-script (a scripted schedule of pool and drive kills
// and recoveries, e.g. '30s:pool-down:DSCS-Serverless;2m:pool-up:
// DSCS-Serverless'; watch serve_faults_total and serve_requeues_total).
//
// Invocation graphs run through POST /system/workflows (spec text body,
// offset:id=benchmark:deps stages joined by ';') or one-shot via
// -workflow; stages chain through object-store objects and place where
// their input's replica lives (watch the serve_workflow_* metrics).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"time"

	"dscs"
	"dscs/internal/faas"
	"dscs/internal/gateway"
	"dscs/internal/metrics"
	"dscs/internal/serve"
	"dscs/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		seed        = flag.Uint64("seed", 7, "environment seed")
		deployAll   = flag.Bool("deploy-all", false, "pre-deploy the whole suite")
		demo        = flag.Bool("demo", false, "run a self-contained request demo and exit")
		workers     = flag.Int("workers", 4, "worker pool size per platform")
		policy      = flag.String("policy", "fcfs", "scheduling policy: "+strings.Join(serve.PolicyNames(), ", "))
		queueDepth  = flag.Int("queue-depth", 256, "admission queue bound per platform")
		maxBatch    = flag.Int("max-batch", serve.DefaultMaxBatch, "max same-benchmark requests coalesced per execution")
		linger      = flag.Duration("batch-linger", 0, "how long a dispatch may wait for its batch to fill toward -max-batch (0 disables)")
		spillover   = flag.Int("spillover-threshold", 0, "DSCS queue depth at which submissions spill to the CPU pool (0 disables)")
		globalBatch = flag.Bool("global-batch", false, "form same-benchmark batches across the whole queue before dispatch (needs -batch-linger)")
		batchSLO    = flag.Duration("batch-slo", 0, "per-request deadline budget bounding how long -global-batch may hold a forming batch (0 = linger only)")
		steal       = flag.Int("steal-threshold", 0, "peer queue depth beyond which an idle pool steals the other class's queued work (0 disables)")
		adaptive    = flag.Bool("adaptive-estimates", false, "price batching and policy decisions with live latency digests once warmed (static estimates stay the cold-start prior)")
		balance     = flag.Bool("adaptive-balance", false, "rebalance on queue delay instead of queue depth: spill and steal once a pool's adopted wait-p95 diverges above a peer's (replaces -spillover-threshold/-steal-threshold)")
		warmup      = flag.Int("estimate-warmup", metrics.DefaultWarmup, "per-{benchmark,platform} completions before live estimates replace the static prior")
		minWorkers  = flag.Int("min-workers", 0, "elastic warm floor per platform; 0 allows scale-to-zero (needs -max-workers)")
		maxWorkers  = flag.Int("max-workers", 0, "elastic warm ceiling per platform; arms the worker lifecycle and replaces -workers (0 keeps fixed pools)")
		coldStart   = flag.Duration("cold-start", 0, "provisioning penalty a cold slot pays before serving (needs -max-workers)")
		idleLinger  = flag.Duration("idle-linger", 0, "idle grace before a surplus warm slot suspends (needs -max-workers)")
		prewarm     = flag.Bool("prewarm", false, "predictive autoscaling: pre-warm to the arrival-rate demand floor and surge on wait-p95 (needs -max-workers; default reactive)")
		hedgeFactor = flag.Float64("hedge-factor", 0, "dispatch a duplicate on a healthy peer once an execution outlives this multiple of its adopted service-p95; first completion wins (0 disables, must be >= 1 otherwise)")
		faultScript = flag.String("fault-script", "", "scripted fault schedule, e.g. '30s:pool-down:DSCS-Serverless;2m:pool-up:DSCS-Serverless' (kinds: pool-down, pool-up, drive-down, drive-up)")
		wfSpec      = flag.String("workflow", "", "run one invocation graph at startup and print its ledger, e.g. '0s:extract=credit-risk:;0s:shard=asset-damage:extract' (offset:id=benchmark:deps, ';'-separated)")
	)
	flag.Parse()

	faults, err := trace.ParseFaultScript(*faultScript)
	if err != nil {
		fail(err)
	}
	env, err := dscs.NewEnvironment(*seed)
	if err != nil {
		fail(err)
	}
	gw, err := gateway.NewWithOptions(env.Runners, "DSCS-Serverless", "Baseline (CPU)",
		serve.Options{
			Workers:            *workers,
			PolicyName:         *policy,
			QueueDepth:         *queueDepth,
			MaxBatch:           *maxBatch,
			BatchLinger:        *linger,
			GlobalBatch:        *globalBatch,
			BatchSLO:           *batchSLO,
			SpilloverThreshold: *spillover,
			StealThreshold:     *steal,
			AdaptiveEstimates:  *adaptive,
			AdaptiveBalance:    *balance,
			EstimateWarmup:     *warmup,
			MinWorkers:         *minWorkers,
			MaxWorkers:         *maxWorkers,
			ColdStart:          *coldStart,
			IdleLinger:         *idleLinger,
			Prewarm:            *prewarm,
			HedgeFactor:        *hedgeFactor,
			Faults:             faults,
		})
	if err != nil {
		fail(err)
	}
	defer gw.Close()

	if *deployAll || *demo {
		if err := deploySuite(gw); err != nil {
			fail(err)
		}
		fmt.Printf("Pre-deployed %d applications.\n", len(dscs.Suite()))
	}

	if *wfSpec != "" {
		// -workflow is a one-shot: run the graph through the API path,
		// print the ledger, exit.
		if err := runWorkflow(gw, *wfSpec); err != nil {
			fail(err)
		}
		return
	}

	if *demo {
		runDemo(gw)
		return
	}

	capacity := fmt.Sprintf("%d workers/platform", *workers)
	if *maxWorkers > 0 {
		mode := "reactive"
		if *prewarm {
			mode = "predictive"
		}
		capacity = fmt.Sprintf("elastic %d..%d workers/platform (%s, cold-start %v, idle-linger %v)",
			*minWorkers, *maxWorkers, mode, *coldStart, *idleLinger)
	}
	fmt.Printf("DSCS-Serverless gateway listening on %s (%s, %s policy, queue %d, batch %d, linger %v, global-batch %v, spillover %d, steal %d, adaptive %v, balance %v)\n",
		*addr, capacity, *policy, *queueDepth, *maxBatch, *linger, *globalBatch, *spillover, *steal, *adaptive, *balance)
	if *hedgeFactor >= 1 {
		fmt.Printf("  hedging duplicates at %gx the adopted service-p95\n", *hedgeFactor)
	}
	if len(faults) > 0 {
		fmt.Printf("  fault script armed: %s\n", trace.FormatFaultScript(faults))
	}
	fmt.Println("  POST /system/functions   deploy (YAML body)")
	fmt.Println("  GET  /system/functions   list deployments")
	fmt.Println("  POST /system/workflows   run an invocation graph (offset:id=benchmark:deps body)")
	fmt.Println("  POST /function/<name>    invoke ({\"batch\":..,\"cold\":..,\"quantile\":..})")
	fmt.Println("  GET  /metrics            telemetry (incl. serve_* queue/batch metrics)")
	if err := http.ListenAndServe(*addr, gw.Handler()); err != nil {
		fail(err)
	}
}

// deploySuite pushes every Table 1 deployment through the API path.
func deploySuite(gw *gateway.Gateway) error {
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	for _, b := range dscs.Suite() {
		resp, err := http.Post(srv.URL+"/system/functions", "application/x-yaml",
			strings.NewReader(faas.DeploymentYAML(b)))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("deploy %s: status %d", b.Slug, resp.StatusCode)
		}
	}
	return nil
}

// runWorkflow submits one invocation graph through POST /system/workflows
// and prints the settled ledger.
func runWorkflow(gw *gateway.Gateway, spec string) error {
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/system/workflows?quantile=0.5", "text/plain",
		strings.NewReader(spec))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("workflow refused (status %d): %s", resp.StatusCode, strings.TrimSpace(string(body[:n])))
	}
	fmt.Printf("POST /system/workflows ->\n%s", body[:n])
	return nil
}

// runDemo exercises the API end to end without needing a free port.
func runDemo(gw *gateway.Gateway) {
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	client := srv.Client()
	client.Timeout = 10 * time.Second

	for _, target := range []string{
		"/function/remote-sensing",
		"/function/remote-sensing?platform=" + url.QueryEscape("Baseline (CPU)"),
	} {
		resp, err := client.Post(srv.URL+target, "application/json",
			strings.NewReader(`{"quantile":0.5}`))
		if err != nil {
			fail(err)
		}
		body := make([]byte, 4096)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		fmt.Printf("POST %s ->\n%s\n", target, body[:n])
	}
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		fail(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	fmt.Printf("GET /metrics ->\n%s", body[:n])
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dscsgate:", err)
	os.Exit(1)
}
