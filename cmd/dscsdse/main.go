// Command dscsdse runs the Section 4.2 design-space exploration standalone:
// it evaluates every configuration, prints both Pareto frontiers with their
// cubic fits, and reports the selected design point.
//
// Usage:
//
//	dscsdse
//	dscsdse -frontier power
//	dscsdse -frontier area
package main

import (
	"flag"
	"fmt"
	"os"

	"dscs"
	"dscs/internal/dse"
	"dscs/internal/metrics"
)

func main() {
	frontier := flag.String("frontier", "both", "frontier to print: power, area, or both")
	flag.Parse()

	fmt.Println("Exploring the design space (this evaluates >650 configurations)...")
	points, err := dscs.ExploreDesignSpace()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dscsdse:", err)
		os.Exit(1)
	}
	feasible := 0
	for _, p := range points {
		if p.Feasible {
			feasible++
		}
	}
	fmt.Printf("Explored %d configurations (%d feasible within the 25W drive budget).\n\n",
		len(points), feasible)

	if *frontier == "power" || *frontier == "both" {
		printFrontier("Power-performance frontier (45nm)", "P",
			dscs.ParetoPower(points), dse.PowerAxes, "W")
	}
	if *frontier == "area" || *frontier == "both" {
		printFrontier("Area-performance frontier (45nm)", "A",
			dscs.ParetoArea(points), dse.AreaAxes, "mm2")
	}

	if best, ok := dscs.OptimalDesign(points); ok {
		fmt.Printf("Selected design: %s (%.0f req/s average across the suite)\n",
			best.Label(), best.Throughput)
	}
}

func printFrontier(title, fitName string, frontier []dse.Point,
	axes func(dse.Point) (float64, float64), unit string) {
	fmt.Println(title)
	for _, p := range frontier {
		x, y := axes(p)
		marker := " "
		if p.Feasible {
			marker = "*"
		}
		fmt.Printf("  %s %-24s %8.0f req/s  %10.2f %s\n", marker, p.Label(), x, y, unit)
	}
	if coeffs, err := dse.FitCubic(frontier, axes); err == nil {
		fmt.Printf("  fit: %s\n", metrics.PolyString(fitName, coeffs))
	}
	fmt.Println("  (* = feasible within the drive power budget at 14nm)")
	fmt.Println()
}
